// Package missingdoc is the fixture for the missingdoc analyzer.
package missingdoc

// Documented is fine.
type Documented struct{}

type Bare struct{} // want "exported type Bare has no doc comment"

// unexported types never fire regardless of docs.
type internalOnly struct{}

// Grouped type declarations inherit the block doc.
type (
	// InGroup has its own doc.
	InGroup struct{}

	AlsoInGroup struct{} // want "exported type AlsoInGroup has no doc comment"
)

// DocumentedConst is fine.
const DocumentedConst = 1

const BareConst = 2 // want "exported const BareConst has no doc comment"

// A block doc covers every constant in the group.
const (
	CoveredA = iota
	CoveredB
)

var (
	// DocumentedVar is fine.
	DocumentedVar int

	BareVar int // want "exported var BareVar has no doc comment"

	bareInternal int
)

// Do is documented.
func Do() {}

func Bareword() {} // want "exported function Bareword has no doc comment"

func helper() {}

// Method is documented.
func (Documented) Method() {}

func (Documented) Naked() {} // want "exported method Naked has no doc comment"

// Methods on unexported receivers are not API surface.
func (internalOnly) Exported() {}

func (b *Bare) PtrNaked() {} // want "exported method PtrNaked has no doc comment"

var _ = helper
var _ = bareInternal

// Package shadowbuiltin is the fixture for the shadowbuiltin analyzer.
package shadowbuiltin

// Config mimics the swifi trace-capacity config the real bug hid in.
type Config struct {
	TraceCapacity int
	// cap as a *field* is fine: always accessed via selector.
	cap int
}

// Clamp reproduces the shipped bug shape: a local variable named cap.
func Clamp(cfg Config) int {
	cap := cfg.TraceCapacity // want `variable cap shadows the predeclared identifier`
	if cap <= 0 {
		cap = 4096
	}
	return cap
}

// Params and named results shadow too.
func resize(len int) (min int) { // want `variable len shadows the predeclared identifier` `variable min shadows the predeclared identifier`
	return len
}

// Range bindings shadow.
func sum(xs []int) int {
	total := 0
	for _, max := range xs { // want `variable max shadows the predeclared identifier`
		total += max
	}
	return total
}

// Constants and types shadow.
const iota2, copy = 1, 2 // want `constant copy shadows the predeclared identifier`

type error struct{} // want `type error shadows the predeclared identifier`

// A package-level function named after a builtin.
func close() {} // want `function close shadows the predeclared identifier`

// Methods named after builtins are fine (selector syntax).
func (Config) Len() int { return 0 }

func (c Config) len() int { return c.cap }

// Suppression works like every other analyzer.
func suppressed(cfg Config) int {
	cap := cfg.TraceCapacity //sgvet:ignore shadowbuiltin — fixture exercises suppression
	return cap
}

// ordinary names never fire.
func ordinary(capacity int) int {
	n := capacity
	return n
}

var _ = resize
var _ = sum
var _ = close
var _ = suppressed
var _ = ordinary
var _ = iota2

package govet

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// AtomicState enforces accessor discipline for fields that participate in
// lock-free publication protocols. A struct field annotated with
//
//	//sgvet:atomicstate accessors=loadFoo,storeFoo
//
// may only be selected from functions (or methods) named in the accessors
// list. The kernel uses this to fence its packed (epoch<<1|faulty) state
// word and service pointer: the invocation fast path reads them without the
// kernel mutex, so every write must go through the helpers that preserve
// the svc-published-before-state ordering.
var AtomicState = &Analyzer{
	Name: "atomicstate",
	Doc:  "restrict annotated struct fields to their declared accessor set",
	Run:  runAtomicState,
}

const atomicStateMarker = "sgvet:atomicstate"

type guardedField struct {
	owner     string // struct type name, for messages
	accessors map[string]bool
}

func runAtomicState(p *Pass) error {
	guarded := make(map[types.Object]*guardedField)
	for _, f := range p.Files {
		collectGuarded(p, f, guarded)
	}
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fnName := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection, ok := p.Info.Selections[sel]
				if !ok || selection.Kind() != types.FieldVal {
					return true
				}
				g, ok := guarded[selection.Obj()]
				if !ok || g.accessors[fnName] {
					return true
				}
				p.Reportf(sel.Sel.Pos(),
					"field %s.%s is atomicstate-guarded; access it only via %s",
					g.owner, sel.Sel.Name, strings.Join(sortedNames(g.accessors), ", "))
				return true
			})
		}
	}
	return nil
}

// collectGuarded finds fields whose doc or trailing comment carries the
// atomicstate marker and resolves their accessor lists.
func collectGuarded(p *Pass, f *ast.File, out map[types.Object]*guardedField) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, field := range st.Fields.List {
				accessors, ok := fieldAccessors(field)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					if obj := p.Info.Defs[name]; obj != nil {
						out[obj] = &guardedField{owner: ts.Name.Name, accessors: accessors}
					}
				}
			}
		}
	}
}

func fieldAccessors(field *ast.Field) (map[string]bool, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, atomicStateMarker) {
				continue
			}
			accessors := make(map[string]bool)
			for _, kv := range strings.Fields(strings.TrimPrefix(text, atomicStateMarker)) {
				if names, ok := strings.CutPrefix(kv, "accessors="); ok {
					for _, n := range strings.Split(names, ",") {
						if n = strings.TrimSpace(n); n != "" {
							accessors[n] = true
						}
					}
				}
			}
			return accessors, true
		}
	}
	return nil, false
}

func sortedNames(set map[string]bool) []string {
	var out []string
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

package govet

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// testLoader is shared so dependency packages type-check once per test run.
var testLoader = NewLoader()

// parseWants extracts `// want "regex" ["regex" ...]` expectations from the
// package's comments, keyed by (file, line).
func parseWants(t *testing.T, pkg *Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, raw := range splitQuoted(t, strings.TrimPrefix(text, "want ")) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, raw, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of Go-quoted or backquoted strings.
func splitQuoted(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("want expectation must be quoted: %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("unterminated want pattern: %q", s)
		}
		raw := s[:end+2]
		if quote == '"' {
			unq, err := strconv.Unquote(raw)
			if err != nil {
				t.Fatalf("bad want pattern %q: %v", raw, err)
			}
			out = append(out, unq)
		} else {
			out = append(out, raw[1:len(raw)-1])
		}
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}

// checkFixture loads a testdata package, runs the analyzers, and matches
// the diagnostics against the fixture's want comments exactly.
func checkFixture(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	pkg, err := testLoader.Load(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(t, pkg)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		matched := false
		for i, re := range wants[key] {
			if re.MatchString(d.Message) {
				wants[key] = append(wants[key][:i], wants[key][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s: expected diagnostic matching %q did not fire", key, re)
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	checkFixture(t, "determinism", Determinism)
}

func TestAtomicStateFixture(t *testing.T) {
	checkFixture(t, "atomicstate", AtomicState)
}

func TestCoreAffinityFixture(t *testing.T) {
	checkFixture(t, "coreaffinity", CoreAffinity)
}

func TestStubDisciplineFixture(t *testing.T) {
	checkFixture(t, "stubdiscipline", StubDiscipline)
}

func TestMissingDocFixture(t *testing.T) {
	checkFixture(t, "missingdoc", MissingDoc)
}

// TestRealPackagesClean locks in the `make lint` contract on the live tree:
// the kernel (with its atomicstate annotations) and the core runtime pass
// all three analyzers.
func TestRealPackagesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks real packages from source")
	}
	for _, dir := range []string{"../../kernel", "../../core"} {
		pkg, err := testLoader.Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		diags, err := Run(pkg, All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

// TestKernelAnnotationsPresent guards against the atomicstate annotations
// being dropped: the kernel package must declare at least the state and svc
// guarded fields, otherwise the analyzer silently checks nothing.
func TestKernelAnnotationsPresent(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks real packages from source")
	}
	pkg, err := testLoader.Load("../../kernel")
	if err != nil {
		t.Fatal(err)
	}
	// Count annotations textually: the analyzer resolves them, this test
	// only asserts they exist.
	guarded := 0
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, atomicStateMarker) {
					guarded++
				}
			}
		}
	}
	if guarded < 2 {
		t.Errorf("kernel declares %d atomicstate annotations, want >= 2 (state and svc)", guarded)
	}
}

func TestShadowBuiltinFixture(t *testing.T) {
	checkFixture(t, "shadowbuiltin", ShadowBuiltin)
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 6 {
		t.Fatalf("ByName(\"\") = %v, %v", all, err)
	}
	one, err := ByName("determinism")
	if err != nil || len(one) != 1 || one[0] != Determinism {
		t.Fatalf("ByName(determinism) = %v, %v", one, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) should fail")
	}
}

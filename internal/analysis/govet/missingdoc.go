package govet

import (
	"go/ast"
	"go/token"
)

// MissingDoc enforces godoc discipline over a package's exported API:
// every exported top-level function, method (on an exported receiver
// type), type, constant, and variable must carry a doc comment, and the
// package itself must have a package comment. Generated files (standard
// "Code generated ... DO NOT EDIT." marker) are exempt — their doc
// surface is the generator's business — as are test files, which the
// loader never parses.
//
// For grouped const/var declarations the usual godoc convention applies:
// a doc comment on the block covers every name in it, and a per-spec doc
// comment covers that spec. Trailing same-line comments do not count —
// godoc renders them, but the API contract here is a leading doc comment.
var MissingDoc = &Analyzer{
	Name: "missingdoc",
	Doc:  "exported identifiers must have doc comments",
	Run:  runMissingDoc,
}

func runMissingDoc(p *Pass) error {
	pkgDocumented := false
	for _, f := range p.Files {
		if f.Doc != nil {
			pkgDocumented = true
		}
	}
	reportedPkg := false
	for _, f := range p.Files {
		if ast.IsGenerated(f) {
			continue
		}
		if !pkgDocumented && !reportedPkg {
			p.Reportf(f.Name.Pos(), "package %s has no package comment", f.Name.Name)
			reportedPkg = true
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(p, d)
			case *ast.GenDecl:
				checkGenDoc(p, d)
			}
		}
	}
	return nil
}

// checkFuncDoc reports exported functions and methods without docs.
// Methods count only when their receiver type is itself exported —
// exported methods on unexported types are not reachable API surface
// (except through exported interfaces, whose methods are checked at the
// interface type).
func checkFuncDoc(p *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	kind := "function"
	if d.Recv != nil {
		if !exportedRecv(d.Recv) {
			return
		}
		kind = "method"
	}
	p.Reportf(d.Name.Pos(), "exported %s %s has no doc comment", kind, d.Name.Name)
}

// exportedRecv reports whether a method receiver names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// checkGenDoc reports undocumented exported types, consts, and vars.
func checkGenDoc(p *Pass, d *ast.GenDecl) {
	switch d.Tok {
	case token.TYPE:
		for _, s := range d.Specs {
			ts, ok := s.(*ast.TypeSpec)
			if !ok || !ts.Name.IsExported() {
				continue
			}
			// A decl doc covers a lone type; in a parenthesized group of
			// several, each exported type needs its own doc comment.
			if ts.Doc == nil && (d.Doc == nil || len(d.Specs) > 1) {
				p.Reportf(ts.Name.Pos(), "exported type %s has no doc comment", ts.Name.Name)
			}
		}
	case token.CONST, token.VAR:
		if d.Doc != nil {
			return // block comment covers the group
		}
		kind := "const"
		if d.Tok == token.VAR {
			kind = "var"
		}
		for _, s := range d.Specs {
			vs, ok := s.(*ast.ValueSpec)
			if !ok || vs.Doc != nil {
				continue
			}
			for _, n := range vs.Names {
				if n.IsExported() {
					p.Reportf(n.Pos(), "exported %s %s has no doc comment", kind, n.Name)
					break
				}
			}
		}
	}
}

// Package govet is a small, dependency-free static-analysis framework for
// the SuperGlue tree, modeled on golang.org/x/tools/go/analysis but built
// entirely on the standard library (go/parser + go/types with the source
// importer). It hosts six analyzers that enforce contracts the compiler
// cannot express:
//
//   - determinism: internal/kernel, internal/core, internal/swifi and
//     internal/codegen must be replay-deterministic. Flags wall-clock reads
//     (time.Now), the global math/rand source, and map iterations whose
//     order can leak into output (returns, outer writes, printing) unless
//     the loop only appends to slices that are sorted afterwards.
//
//   - atomicstate: fields annotated with a
//     `//sgvet:atomicstate accessors=f,g` doc comment may only be touched
//     from the listed accessor functions. Used to fence the kernel's packed
//     (epoch|faulty) state word and service pointer behind their snapshot/
//     publish helpers so the lock-free invocation fast path stays correct.
//
//   - stubdiscipline: no Invoke/Upcall/Dispatch call while the kernel
//     mutex is held (re-entry deadlocks the dispatcher), and generated or
//     hand-written stub files (cstub.go, sstub.go, client_stub.go,
//     server_stub.go) must not call kernel topology mutators — stubs are
//     data-plane code.
//
//   - shadowbuiltin: no declaration may shadow a predeclared identifier
//     (`cap := …`, a parameter named len). Shadowing silently disables
//     the builtin for the rest of the scope; the SWIFI campaign engine
//     shipped exactly this bug.
//
//   - coreaffinity: core placement happens only through the sanctioned
//     control-plane calls (core.System.PlaceServer, CreateThreadOn), never
//     via raw SetComponentCore outside the kernel/core packages and never
//     from stub (data-plane) files.
//
//   - missingdoc: every exported identifier (and the package itself) must
//     carry a doc comment, so the runtime/kernel/observability API stays
//     godoc-complete. Generated files are exempt.
//
// A diagnostic can be suppressed with a trailing or preceding comment of
// the form `//sgvet:ignore <analyzer>` when the flagged pattern is known
// to be benign; suppressions should carry a justification in prose.
package govet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// All returns every registered analyzer in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, AtomicState, StubDiscipline, ShadowBuiltin, MissingDoc, CoreAffinity}
}

// ByName resolves a comma-separated analyzer list; an empty spec means all.
func ByName(spec string) ([]*Analyzer, error) {
	if spec == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(spec, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in file:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Package is a parsed and fully type-checked package directory.
type Package struct {
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader parses and type-checks package directories. One Loader shares a
// FileSet and a source importer, so dependency packages (including the
// standard library) are type-checked once and cached across Load calls.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader with a fresh FileSet and source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Load parses the non-test .go files of dir and type-checks them against
// their real dependencies.
func (l *Loader) Load(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no Go source files", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(dir, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", dir, err)
	}
	return &Package{Dir: dir, Fset: l.fset, Files: files, Pkg: pkg, Info: info}, nil
}

// Run applies the analyzers to pkg and returns the diagnostics that are not
// suppressed by //sgvet:ignore comments, sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	diags = suppress(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// suppress drops diagnostics covered by an `//sgvet:ignore <analyzers>`
// comment on the same line or the line directly above the finding.
func suppress(pkg *Package, diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
		name string
	}
	ignored := make(map[key]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "sgvet:ignore") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, "sgvet:ignore")
				for _, name := range strings.FieldsFunc(rest, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					ignored[key{pos.Filename, pos.Line, name}] = true
					ignored[key{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	if len(ignored) == 0 {
		return diags
	}
	var out []Diagnostic
	for _, d := range diags {
		if ignored[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// calleeFunc resolves the *types.Func a call invokes, or nil for builtins,
// conversions and indirect calls through function values.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := p.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// calleeName returns the syntactic name of the called function or method.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

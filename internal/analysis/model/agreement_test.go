package model

import (
	"testing"

	"strings"

	"superglue/internal/analysis/speclint"
	"superglue/internal/swifi"
)

// findRepro checks the fixture and returns the repro plan of the first
// error diagnostic with the given code.
func findRepro(t *testing.T, fixture, service, code string, cfg Config) *Repro {
	t.Helper()
	spec := parseFixture(t, fixture, service)
	rep, err := Check(spec, cfg)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	for _, d := range rep.Diagnostics {
		if d.Code == code && d.Severity == speclint.SevError {
			if d.Repro == nil {
				t.Fatalf("%s has no repro plan", code)
			}
			return d.Repro
		}
	}
	t.Fatalf("no %s error diagnostic", code)
	return nil
}

// replay lowers the plan to a campaign, runs it, and returns the single
// trial's outcome string.
func replay(t *testing.T, r *Repro) string {
	t.Helper()
	cfg, err := r.CampaignConfig()
	if err != nil {
		t.Fatalf("lower to campaign: %v", err)
	}
	res, err := swifi.Run(cfg)
	if err != nil {
		t.Fatalf("run lowered campaign: %v", err)
	}
	if len(res.Trials) != 1 {
		t.Fatalf("lowered campaign ran %d trials, want 1", len(res.Trials))
	}
	t.Logf("dynamic trial: %s (%s)", res.Trials[0].Outcome, res.Trials[0].Detail)
	return res.Trials[0].Outcome.String()
}

// TestAgreementSG201: the fail-hard misrouted-corruption witness replays
// dynamically as an unrecovered trial.
func TestAgreementSG201(t *testing.T) {
	r := findRepro(t, "ramfs_retry.sg", "ramfs", "SG201", Config{FailHard: true})
	if got := replay(t, r); !strings.HasPrefix(got, r.Predicted) {
		t.Errorf("dynamic outcome %q, predicted %q", got, r.Predicted)
	}
}

// TestAgreementSG203: the unclassified-corruption reboot loop replays as
// a supervisor-degraded trial (restart intensity exhausted).
func TestAgreementSG203(t *testing.T) {
	r := findRepro(t, "ramfs_noclass.sg", "ramfs", "SG203", Config{})
	if r.Policy == "" {
		t.Fatalf("SG203 repro carries no supervision policy")
	}
	if got := replay(t, r); got != r.Predicted {
		t.Errorf("dynamic outcome %q, predicted %q", got, r.Predicted)
	}
}

// TestAgreementSG204: the exhausted-walk-budget witness replays as a
// degraded during-recovery trial.
func TestAgreementSG204(t *testing.T) {
	r := findRepro(t, "lock_budget1.sg", "lock", "SG204", Config{})
	if got := replay(t, r); got != r.Predicted {
		t.Errorf("dynamic outcome %q, predicted %q", got, r.Predicted)
	}
}

// TestAgreementSG202PlanShape: the wakeup-replay cycle has no faithful
// dynamic analog on the (correct) builtin spec — the repro documents that
// in its note — but the lowered plan must still be well-formed: one trial,
// one fault of the witness kind, deterministic for the pinned seed.
func TestAgreementSG202PlanShape(t *testing.T) {
	r := findRepro(t, "event_noreset.sg", "event", "SG202", Config{})
	if r.Note == "" {
		t.Errorf("SG202 repro carries no caveat note")
	}
	cfg, err := r.CampaignConfig()
	if err != nil {
		t.Fatalf("lower to campaign: %v", err)
	}
	opp, err := swifi.Opportunities(cfg)
	if err != nil {
		t.Fatalf("opportunities: %v", err)
	}
	plan := swifi.PlanAt(cfg, opp, 0)
	if len(plan) != 1 {
		t.Fatalf("plan has %d entries, want 1", len(plan))
	}
	if got := plan[0].Kind.String(); got != r.Kinds[0] {
		t.Errorf("planned kind %s, want %s", got, r.Kinds[0])
	}
	if plan2 := swifi.PlanAt(cfg, opp, 0); plan2[0] != plan[0] {
		t.Errorf("plan not deterministic: %+v vs %+v", plan[0], plan2[0])
	}
}

package model

import (
	"fmt"
	"sort"
	"time"

	"superglue/internal/core"
	"superglue/internal/fault"
)

// conf is one operational configuration of the bounded system: the
// shared state of up to maxK descriptors and the block/hold status of up
// to maxM threads. It is comparable, so it keys the visited set directly.
//
// Descriptor slot values: 0 = absent, 1 = closed, 2+i = the i-th live
// shared state. Thread slot values: 0 = idle, 1+d = blocked on
// descriptor d, 1+maxK+d = holding descriptor d.
type conf struct {
	d [maxK]uint8
	t [maxM]uint8
}

const (
	descAbsent = 0
	descClosed = 1
	descLive   = 2 // first live-state code

	threadIdle = 0
)

func blockedOn(d int) uint8 { return uint8(1 + d) }
func holdingOf(d int) uint8 { return uint8(1 + maxK + d) }

// machine is one spec's compiled product automaton.
type machine struct {
	spec *core.Spec
	sm   *core.StateMachine
	cfg  Config

	// liveStates are the walk-reachable shared states (s0 first, then
	// sorted), indexed by the desc slot codes.
	liveStates []string
	stateCode  map[string]uint8

	// moves precomputed per live state: σ-valid pure functions and their
	// successor state codes, in sorted function order.
	pureMoves map[uint8][]move

	creation []string // sorted creation functions
	// plainBlocks are blocking functions that are not hold functions; a
	// thread blocked on one is woken by T0/T1 and re-contends (sm_reset)
	// or has no replay protocol at all (the SG202 hazard).
	plainBlocks []string
	// brokenBlocks are plain blocking functions with no sm_reset
	// companion: recovery cannot decide how to replay the wait.
	brokenBlocks []string
	holdFns      []string // sorted hold-side functions of sm_hold pairs

	walkBound   int // recovery-walk retry bound (spec budget or MaxRetries)
	maxAttempts int // escalation-ladder bound (MaxRetries + CascadeRetries)
}

// move is one σ-valid operational transition of a live descriptor.
type move struct {
	fn string
	to uint8 // successor desc slot code
}

// edge records how a configuration was first reached, for witness
// reconstruction.
type edge struct {
	prev conf
	step string
}

func newMachine(spec *core.Spec, cfg Config) (*machine, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("model: %s: %w", spec.Service, err)
	}
	sm, err := core.NewStateMachine(spec)
	if err != nil {
		return nil, fmt.Errorf("model: %s: %w", spec.Service, err)
	}
	m := &machine{spec: spec, sm: sm, cfg: cfg}

	// Live states: every state with a recovery walk from s0. s_f and
	// closed are encoded separately.
	var live []string
	for _, st := range sm.States() {
		if st == core.StateFaulty || st == core.StateClosed {
			continue
		}
		if _, ok := sm.Walk(st); ok {
			live = append(live, st)
		}
	}
	sort.Strings(live)
	// s0 first so a fresh descriptor is always code descLive.
	for i, st := range live {
		if st == core.StateInitial && i != 0 {
			live[0], live[i] = live[i], live[0]
			sort.Strings(live[1:])
			break
		}
	}
	if len(live) == 0 || live[0] != core.StateInitial {
		live = append([]string{core.StateInitial}, live...)
	}
	if descLive+len(live) > 255 {
		return nil, fmt.Errorf("model: %s: too many states (%d)", spec.Service, len(live))
	}
	m.liveStates = live
	m.stateCode = make(map[string]uint8, len(live))
	for i, st := range live {
		m.stateCode[st] = uint8(descLive + i)
	}

	// Precompute σ-valid pure moves per live state, including terminal
	// transitions into closed.
	m.pureMoves = make(map[uint8][]move)
	var fns []string
	for _, f := range spec.Funcs {
		if spec.IsPure(f.Name) || spec.IsTerminal(f.Name) || spec.IsReset(f.Name) {
			fns = append(fns, f.Name)
		}
	}
	sort.Strings(fns)
	for _, st := range live {
		code := m.stateCode[st]
		for _, fn := range fns {
			nxt, ok := sm.Next(st, fn)
			if !ok {
				continue
			}
			var to uint8
			switch {
			case nxt == core.StateClosed:
				to = descClosed
			default:
				c, known := m.stateCode[nxt]
				if !known {
					continue // state with no recovery walk: not explorable
				}
				to = c
			}
			m.pureMoves[code] = append(m.pureMoves[code], move{fn: fn, to: to})
		}
	}

	m.creation = append(m.creation, spec.Creation...)
	sort.Strings(m.creation)

	for _, b := range spec.Blocking {
		if _, isHold := spec.HoldFn(b); isHold {
			m.holdFns = append(m.holdFns, b)
			continue
		}
		m.plainBlocks = append(m.plainBlocks, b)
		if !spec.IsReset(b) {
			m.brokenBlocks = append(m.brokenBlocks, b)
		}
	}
	sort.Strings(m.plainBlocks)
	sort.Strings(m.brokenBlocks)
	sort.Strings(m.holdFns)

	m.maxAttempts = cfg.MaxRetries + cfg.CascadeRetries
	m.walkBound = cfg.MaxRetries
	if spec.RecoveryBudget > 0 {
		m.walkBound = spec.RecoveryBudget
	}
	return m, nil
}

// stateName renders a desc slot code.
func (m *machine) stateName(code uint8) string {
	switch code {
	case descAbsent:
		return "absent"
	case descClosed:
		return core.StateClosed
	default:
		return m.liveStates[int(code)-descLive]
	}
}

// canon sorts the active thread slots: threads are symmetric, so
// configurations differing only by thread identity collapse. Only the
// first Threads slots participate — the unused tail must stay zero, or
// sorting would migrate block/hold markers out of the active window.
func (m *machine) canon(c conf) conf {
	t := c.t[:m.cfg.Threads]
	sort.Slice(t, func(i, j int) bool { return t[i] < t[j] })
	return c
}

// holderOf returns the index of the thread holding descriptor d, or -1.
func (m *machine) holderOf(c conf, d int) int {
	for i := 0; i < m.cfg.Threads; i++ {
		if c.t[i] == holdingOf(d) {
			return i
		}
	}
	return -1
}

// successors enumerates c's operational successors in deterministic
// order, invoking emit with the move description and the canonical
// successor.
func (m *machine) successors(c conf, emit func(step string, next conf)) {
	// Creation into the lowest absent slot (slots are interchangeable
	// until created, so only one is tried).
	for d := 0; d < m.cfg.Descs; d++ {
		if c.d[d] != descAbsent {
			continue
		}
		for _, fn := range m.creation {
			next := c
			next.d[d] = descLive // s0
			emit(fmt.Sprintf("create d%d via %s", d, fn), m.canon(next))
		}
		break
	}
	for d := 0; d < m.cfg.Descs; d++ {
		code := c.d[d]
		if code < descLive {
			continue
		}
		// Pure σ moves (terminal and reset included).
		for _, mv := range m.pureMoves[code] {
			next := c
			next.d[d] = mv.to
			if mv.to == descClosed {
				// Closing releases nothing: holders and blocked threads
				// keep their per-thread state (the kernel does not know
				// about them), which is exactly the hazard window the
				// episode simulation probes.
				emit(fmt.Sprintf("close d%d via %s", d, mv.fn), m.canon(next))
			} else {
				emit(fmt.Sprintf("d%d: %s (%s → %s)", d, mv.fn, m.stateName(code), m.stateName(mv.to)), m.canon(next))
			}
		}
		// Block / hold acquisition by the first idle thread (threads are
		// symmetric; one representative suffices).
		idle := -1
		for i := 0; i < m.cfg.Threads; i++ {
			if c.t[i] == threadIdle {
				idle = i
				break
			}
		}
		if idle >= 0 {
			for _, h := range m.holdFns {
				next := c
				if m.holderOf(c, d) < 0 {
					next.t[idle] = holdingOf(d)
					emit(fmt.Sprintf("thread acquires hold %s on d%d", h, d), m.canon(next))
				} else {
					next.t[idle] = blockedOn(d)
					emit(fmt.Sprintf("thread contends hold %s on d%d (blocked)", h, d), m.canon(next))
				}
			}
			for _, b := range m.plainBlocks {
				next := c
				next.t[idle] = blockedOn(d)
				emit(fmt.Sprintf("thread blocks in %s on d%d", b, d), m.canon(next))
			}
		}
		// Wakeup: a signaler completes the wait of one blocked thread.
		if len(m.spec.Wakeup) > 0 {
			for i := 0; i < m.cfg.Threads; i++ {
				if c.t[i] != blockedOn(d) {
					continue
				}
				next := c
				next.t[i] = threadIdle
				emit(fmt.Sprintf("%s wakes thread blocked on d%d", m.spec.Wakeup[0], d), m.canon(next))
				break
			}
		}
		// Release: a holder releases; the first contender (if any) takes
		// the hold over.
		if h := m.holderOf(c, d); h >= 0 && len(m.holdFns) > 0 {
			if pair, ok := m.spec.HoldFn(m.holdFns[0]); ok {
				next := c
				next.t[h] = threadIdle
				for i := 0; i < m.cfg.Threads; i++ {
					if next.t[i] == blockedOn(d) {
						next.t[i] = holdingOf(d)
						break
					}
				}
				emit(fmt.Sprintf("thread releases d%d via %s", d, pair.Release), m.canon(next))
			}
		}
	}
}

// explore runs the operational BFS from the empty configuration,
// returning the visited set with witness edges and the per-depth
// frontier trajectory.
func (m *machine) explore(deadline time.Time) (map[conf]edge, []int, error) {
	start := conf{}
	visited := map[conf]edge{start: {}}
	frontier := []conf{start}
	var trajectory []int
	for len(frontier) > 0 {
		trajectory = append(trajectory, len(frontier))
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil, trajectory, fmt.Errorf("model: %s: deadline exceeded after %d states", m.spec.Service, len(visited))
		}
		var next []conf
		for _, c := range frontier {
			m.successors(c, func(step string, nc conf) {
				if _, seen := visited[nc]; seen {
					return
				}
				if len(visited) >= m.cfg.MaxStates {
					return
				}
				visited[nc] = edge{prev: c, step: step}
				next = append(next, nc)
			})
		}
		if len(visited) >= m.cfg.MaxStates {
			return nil, trajectory, fmt.Errorf("model: %s: state budget %d exceeded (operational)", m.spec.Service, m.cfg.MaxStates)
		}
		frontier = next
	}
	return visited, trajectory, nil
}

// path reconstructs the operational witness prefix leading to c.
func path(visited map[conf]edge, c conf) []string {
	var rev []string
	for {
		e, ok := visited[c]
		if !ok || e.step == "" {
			break
		}
		rev = append(rev, e.step)
		c = e.prev
	}
	out := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// confString renders a configuration for witness traces.
func (m *machine) confString(c conf) string {
	s := "descs["
	for d := 0; d < m.cfg.Descs; d++ {
		if d > 0 {
			s += " "
		}
		s += fmt.Sprintf("d%d=%s", d, m.stateName(c.d[d]))
	}
	s += "] threads["
	for i := 0; i < m.cfg.Threads; i++ {
		if i > 0 {
			s += " "
		}
		switch {
		case c.t[i] == threadIdle:
			s += "idle"
		case c.t[i] >= holdingOf(0):
			s += fmt.Sprintf("holds(d%d)", int(c.t[i])-1-maxK)
		default:
			s += fmt.Sprintf("blocked(d%d)", int(c.t[i])-1)
		}
	}
	return s + "]"
}

// routeKind mirrors core.System.routeFault: the runtime handler layer
// (Config.FaultActions), then the spec's sm_fault declaration, then the
// kind's built-in default.
func (m *machine) routeKind(k fault.Kind) core.FaultAction {
	if name, ok := m.cfg.FaultActions[k.String()]; ok {
		if act, valid := core.ParseFaultAction(name); valid && act != core.ActionDefault {
			return act
		}
	}
	if name, ok := m.spec.FaultActions[k.String()]; ok {
		if act, valid := core.ParseFaultAction(name); valid {
			return act
		}
	}
	if k.Transient() {
		return core.ActionRetry
	}
	return core.ActionReboot
}

package model

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"superglue/internal/analysis/speclint"
)

// The SG diagnostic registry: speclint owns SG1xx (syntactic/structural
// spec lints), model owns SG2xx (behavioral recovery verdicts). The tests
// below pin the registry invariants: every code is documented in exactly
// one package header, the two namespaces are disjoint, and every
// documented code has at least one triggering fixture — so no code can
// rot into an undocumented or untestable state.

var sgCode = regexp.MustCompile(`SG\d{3}`)

// catalogueEntry matches one catalogue line of a package doc comment —
// an indented `SGxxx severity description` row — as opposed to a prose
// cross-reference to another package's code.
var catalogueEntry = regexp.MustCompile(`(?m)^//\t(SG\d{3}) +(error|warn|info) `)

// docCodes extracts the set of SG codes catalogued in a file's package
// doc comment (everything before the package clause).
func docCodes(t *testing.T, path string) map[string]bool {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	src := string(raw)
	if i := strings.Index(src, "\npackage "); i >= 0 {
		src = src[:i]
	}
	out := make(map[string]bool)
	for _, m := range catalogueEntry.FindAllStringSubmatch(src, -1) {
		out[m[1]] = true
	}
	return out
}

// sortedKeys flattens a code set for error messages.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// speclintFixtureCodes lints every speclint testdata fixture and returns
// the union of emitted codes.
func speclintFixtureCodes(t *testing.T) map[string]bool {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "speclint", "testdata", "*.sg"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no speclint fixtures: %v", err)
	}
	out := make(map[string]bool)
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		service := strings.TrimSuffix(filepath.Base(p), ".sg")
		diags, err := speclint.LintSource(service, string(raw))
		if err != nil {
			t.Fatalf("lint %s: %v", p, err)
		}
		for _, d := range diags {
			out[d.Code] = true
		}
	}
	return out
}

// modelFixtureCodes checks every model testdata fixture under the config
// that arms its seeded violation and returns the union of emitted codes
// (any severity).
func modelFixtureCodes(t *testing.T) map[string]bool {
	t.Helper()
	fixtures := []struct {
		file, service string
		cfg           Config
	}{
		{"ramfs_retry.sg", "ramfs", Config{FailHard: true}},
		{"event_noreset.sg", "event", Config{}},
		{"ramfs_noclass.sg", "ramfs", Config{}},
		{"lock_budget1.sg", "lock", Config{}},
	}
	out := make(map[string]bool)
	for _, f := range fixtures {
		spec := parseFixture(t, f.file, f.service)
		rep, err := Check(spec, f.cfg)
		if err != nil {
			t.Fatalf("check %s: %v", f.file, err)
		}
		for _, d := range rep.Diagnostics {
			out[d.Code] = true
		}
	}
	return out
}

// TestDiagnosticRegistry pins the registry invariants across both
// diagnostic-emitting analysis packages.
func TestDiagnosticRegistry(t *testing.T) {
	lintDocs := docCodes(t, filepath.Join("..", "speclint", "speclint.go"))
	modelDocs := docCodes(t, "model.go")
	if len(lintDocs) == 0 || len(modelDocs) == 0 {
		t.Fatalf("empty catalogue: speclint=%v model=%v", sortedKeys(lintDocs), sortedKeys(modelDocs))
	}

	// Namespace discipline: speclint documents only SG1xx, model only
	// SG2xx, so the two headers cannot both claim a code.
	for c := range lintDocs {
		if !strings.HasPrefix(c, "SG1") {
			t.Errorf("speclint header documents %s outside the SG1xx namespace", c)
		}
	}
	for c := range modelDocs {
		if !strings.HasPrefix(c, "SG2") {
			t.Errorf("model header documents %s outside the SG2xx namespace", c)
		}
	}
	for c := range lintDocs {
		if modelDocs[c] {
			t.Errorf("code %s documented by both packages", c)
		}
	}

	// Every documented code fires on at least one committed fixture, and
	// every fired code is documented.
	lintFired := speclintFixtureCodes(t)
	for c := range lintDocs {
		if !lintFired[c] {
			t.Errorf("speclint documents %s but no testdata fixture triggers it", c)
		}
	}
	for c := range lintFired {
		if !lintDocs[c] {
			t.Errorf("speclint emits %s but its package header does not document it", c)
		}
	}

	modelFired := modelFixtureCodes(t)
	for c := range modelDocs {
		if !modelFired[c] {
			t.Errorf("model documents %s but no testdata fixture triggers it", c)
		}
	}
	for c := range modelFired {
		if !modelDocs[c] {
			t.Errorf("model emits %s but its package header does not document it", c)
		}
	}
}

// TestDiagnosticCodesHaveSeverityAndMessage: every emitted diagnostic
// carries a code in the registry format, a valid severity, and a
// non-empty message — the contract the SARIF writer depends on.
func TestDiagnosticCodesHaveSeverityAndMessage(t *testing.T) {
	spec := parseFixture(t, "lock_budget1.sg", "lock")
	rep, err := Check(spec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Diagnostics {
		if !sgCode.MatchString(d.Code) {
			t.Errorf("malformed code %q", d.Code)
		}
		switch d.Severity {
		case speclint.SevInfo, speclint.SevWarn, speclint.SevError:
		default:
			t.Errorf("%s: invalid severity %v", d.Code, d.Severity)
		}
		if d.Message == "" {
			t.Errorf("%s: empty message", d.Code)
		}
	}
}

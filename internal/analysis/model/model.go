// Package model implements a bounded exhaustive model checker over
// compiled SuperGlue interface specifications: the static counterpart of
// the SWIFI campaigns, proving the recovery properties those campaigns
// sample (§V, Table II) for every reachable configuration of a bounded
// system instead of 500 random trials.
//
// The checker compiles a spec's descriptor state machine σ, its
// block/hold/wakeup protocol, its sm_fault policy, and the active
// recovery policy and supervision strategy into a product automaton:
//
//	(descriptor shared states)^k × (thread block/hold status)^m
//	    × fault kind × recovery mechanism phase (R0/T0/T1/D0/D1/G0/G1/U0)
//	    × escalation-ladder attempt counter × restart-intensity budget
//
// Operational moves (creation, pure transitions, block, wakeup, hold,
// release) are explored breadth-first for a bounded k descriptors and m
// threads; in every reachable configuration every fault kind of the pool
// is injected and its recovery episode — which is deterministic, mirroring
// the client-stub escalation ladder and the recovery-walk engine — is
// simulated step by step, including during-recovery secondary faults.
//
// Verified properties and their diagnostic codes:
//
//	SG201 error  recovery-coverage liveness: a fault kind injected in a
//	             reachable configuration ends in neither a Recovered nor a
//	             Degraded terminal (the static analog of Table II)
//	SG202 error  recovery-walk termination: a recovery episode revisits a
//	             configuration — a hold-replay or wakeup-replay cycle
//	             (generalizing the syntactic SG105/SG110 lints to behavior)
//	SG203 error  restart-intensity exhaustion (core.ErrRestartIntensity) is
//	             reachable under the declared supervision tree from a
//	             single fault; as info, the minimal storm burst that
//	             exhausts the budget is reported with a witness
//	SG204 error  a mid-recovery fault (the during-recovery shape) strands a
//	             held descriptor: the episode ends with a tracked hold lost
//
// Every violation carries a full witness trace (the operational path to
// the configuration plus the step-by-step episode) and is lowered to a
// concrete SWIFI injection plan (Repro) that replays the counterexample
// as a deterministic dynamic trial.
package model

import (
	"fmt"
	"time"

	"superglue/internal/analysis/speclint"
	"superglue/internal/core"
	"superglue/internal/fault"
)

// Bounded-exploration caps: the encoded configuration holds at most
// maxK descriptor slots and maxM thread slots.
const (
	maxK = 3
	maxM = 3
)

// Config parameterizes one checking run. The zero value checks with the
// deployment defaults: 2 descriptors, 2 threads, the default recovery
// policy (degrade at exhaustion), no supervision tree, the eight
// single-core fault kinds, and up to 2 during-recovery secondaries.
type Config struct {
	// Descs is k, the descriptor bound (default 2, max 3).
	Descs int
	// Threads is m, the thread bound (default 2, max 3).
	Threads int
	// MaxRetries and CascadeRetries override the escalation-ladder rungs
	// (zero takes the core defaults, 12 and 4).
	MaxRetries     int
	CascadeRetries int
	// FailHard selects RecoveryPolicy.Degrade=false: exhaustion fails the
	// call (ErrRecoveryFailed) instead of degrading it.
	FailHard bool
	// Supervision names a restart strategy ("one-for-one", "rest-for-one",
	// "all-for-one"); empty keeps the flat escalation ladder. With a
	// strategy set, server µ-reboots charge the root supervisor's
	// restart-intensity budget.
	Supervision string
	// RestartIntensity overrides the supervision budget (zero takes
	// core.DefaultRestartIntensity).
	RestartIntensity int
	// FaultActions is the runtime fault-handler layer (kind name →
	// reboot|retry|degrade), applied before the spec's sm_fault
	// declarations exactly like core.System.HandleFault.
	FaultActions map[string]string
	// Kinds is the injected fault-kind pool; nil takes DefaultKinds().
	Kinds []fault.Kind
	// Secondaries is the number of during-recovery secondary faults armed
	// per episode variant (default 2; negative disables the
	// during-recovery pass).
	Secondaries int
	// MaxStates bounds the total explored states, operational and episode
	// combined (default 1 << 20). Exceeding it is an error: a state-space
	// blowup is a regression, not a truncated pass.
	MaxStates int
	// Deadline bounds wall-clock time (zero: none).
	Deadline time.Duration
}

// DefaultKinds is the model's injection pool when Config.Kinds is nil:
// the eight single-core kinds of the taxonomy, matching the shaped SWIFI
// campaigns' default pool.
func DefaultKinds() []fault.Kind {
	return []fault.Kind{
		fault.KindRegisterFlip, fault.KindHang, fault.KindLivelock,
		fault.KindDescCorruption, fault.KindStorageCrash,
		fault.KindStorageCorruption, fault.KindMessageLoss, fault.KindMessageDup,
	}
}

// Diagnostic is one model-checker finding: an SG2xx code with a witness
// trace and, when the violation has a runnable dynamic analog, a lowered
// SWIFI repro plan.
type Diagnostic struct {
	// Code is the stable diagnostic code (SG2xx).
	Code string
	// Severity is the finding's gravity (speclint's scale).
	Severity speclint.Severity
	// Service is the interface the finding is about.
	Service string
	// Message is the human-readable finding.
	Message string
	// Witness is the counterexample: the operational path to the faulted
	// configuration followed by the recovery episode, step by step.
	Witness []string
	// Repro is the lowered SWIFI injection plan, nil when the violation
	// has no runnable analog (pure spec-shape counterexamples).
	Repro *Repro
}

// String formats the diagnostic like a speclint finding.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s: %s", d.Service, d.Code, d.Severity, d.Message)
}

// Report is the result of checking one spec.
type Report struct {
	// Service is the checked interface.
	Service string
	// Descs and Threads echo the resolved exploration bounds (after
	// defaulting), so reports are self-describing.
	Descs, Threads int
	// States is the number of distinct reachable operational
	// configurations (the BFS frontier union).
	States int
	// EpisodeStates is the number of distinct recovery-episode states
	// stepped through across all injections.
	EpisodeStates int
	// Episodes is the number of fault injections simulated.
	Episodes int
	// Trajectory is the operational BFS frontier size per depth — the
	// state-count trajectory the CI budget guard prints.
	Trajectory []int
	// Diagnostics holds the SG2xx findings, deterministic order.
	Diagnostics []Diagnostic
	// Verified summarizes each property that held, for `sgc doc`.
	Verified []string
	// Elapsed is the wall-clock checking time.
	Elapsed time.Duration
}

// HasErrors reports whether any diagnostic is error-severity.
func (r *Report) HasErrors() bool {
	for _, d := range r.Diagnostics {
		if d.Severity == speclint.SevError {
			return true
		}
	}
	return false
}

// normalized fills Config defaults and clamps bounds.
func (c Config) normalized() Config {
	if c.Descs <= 0 {
		c.Descs = 2
	}
	if c.Descs > maxK {
		c.Descs = maxK
	}
	if c.Threads <= 0 {
		c.Threads = 2
	}
	if c.Threads > maxM {
		c.Threads = maxM
	}
	pol := core.RecoveryPolicy{MaxRetries: c.MaxRetries, CascadeRetries: c.CascadeRetries}
	if pol.MaxRetries <= 0 {
		pol.MaxRetries = core.DefaultRecoveryPolicy().MaxRetries
	}
	if pol.CascadeRetries < 0 {
		pol.CascadeRetries = core.DefaultRecoveryPolicy().CascadeRetries
	} else if c.CascadeRetries == 0 {
		pol.CascadeRetries = core.DefaultRecoveryPolicy().CascadeRetries
	}
	c.MaxRetries = pol.MaxRetries
	c.CascadeRetries = pol.CascadeRetries
	if c.RestartIntensity <= 0 {
		c.RestartIntensity = core.DefaultRestartIntensity
	}
	if len(c.Kinds) == 0 {
		c.Kinds = DefaultKinds()
	}
	if c.Secondaries == 0 {
		c.Secondaries = 2
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 1 << 20
	}
	return c
}

// Check explores the spec's product automaton under cfg and reports the
// verified properties and any SG2xx violations. It fails (error, not
// diagnostic) when the spec cannot be compiled or the exploration budget
// is exceeded.
func Check(spec *core.Spec, cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	m, err := newMachine(spec, cfg)
	if err != nil {
		return nil, err
	}
	return m.check()
}

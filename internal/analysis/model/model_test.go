package model

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"superglue/internal/analysis/speclint"
	"superglue/internal/core"
	"superglue/internal/idl"
	"superglue/internal/services/builtin"
)

func parseBuiltin(t *testing.T, service string) *core.Spec {
	t.Helper()
	for _, src := range builtin.Sources() {
		if src.Service != service {
			continue
		}
		spec, err := idl.Parse(src.Service, src.IDL)
		if err != nil {
			t.Fatalf("parse builtin %s: %v", service, err)
		}
		return spec
	}
	t.Fatalf("no builtin service %q", service)
	return nil
}

func parseFixture(t *testing.T, name, service string) *core.Spec {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	spec, err := idl.Parse(service, string(src))
	if err != nil {
		t.Fatalf("parse fixture %s: %v", name, err)
	}
	return spec
}

// TestBuiltinsVerifyClean is the tentpole's headline property: all six
// embedded specs pass every checked property under the deployment
// defaults, with small state spaces.
func TestBuiltinsVerifyClean(t *testing.T) {
	for _, src := range builtin.Sources() {
		src := src
		t.Run(src.Service, func(t *testing.T) {
			spec, err := idl.Parse(src.Service, src.IDL)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			rep, err := Check(spec, Config{})
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if rep.HasErrors() {
				for _, d := range rep.Diagnostics {
					t.Errorf("unexpected diagnostic: %s", d)
					for _, w := range d.Witness {
						t.Logf("  witness: %s", w)
					}
				}
			}
			if len(rep.Verified) != 4 {
				t.Errorf("Verified = %d entries, want 4", len(rep.Verified))
			}
			if rep.States == 0 || rep.Episodes == 0 {
				t.Errorf("empty exploration: states=%d episodes=%d", rep.States, rep.Episodes)
			}
			if len(rep.Trajectory) == 0 {
				t.Errorf("no trajectory recorded")
			}
			t.Logf("%s: %d states, %d episodes, %d episode steps, trajectory %v",
				src.Service, rep.States, rep.Episodes, rep.EpisodeStates, rep.Trajectory)
		})
	}
}

// TestBrokenFixtures seeds each SG2xx violation and checks the finding,
// its witness, and the lowered repro plan.
func TestBrokenFixtures(t *testing.T) {
	cases := []struct {
		fixture  string
		service  string
		cfg      Config
		code     string
		kind     string // expected repro kind
		shape    string
		expected string // predicted trial outcome
	}{
		{
			fixture: "ramfs_retry.sg", service: "ramfs",
			cfg:  Config{FailHard: true},
			code: "SG201", kind: "storage-corruption",
			shape: "storm", expected: "not recovered",
		},
		{
			fixture: "event_noreset.sg", service: "event",
			cfg:  Config{},
			code: "SG202", kind: "desc-corruption",
			shape: "storm", expected: "not recovered",
		},
		{
			fixture: "ramfs_noclass.sg", service: "ramfs",
			cfg:  Config{},
			code: "SG203", kind: "storage-corruption",
			shape: "storm", expected: "degraded",
		},
		{
			fixture: "lock_budget1.sg", service: "lock",
			cfg:  Config{},
			code: "SG204", kind: "desc-corruption",
			shape: "during-recovery", expected: "degraded",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.fixture, func(t *testing.T) {
			spec := parseFixture(t, tc.fixture, tc.service)
			rep, err := Check(spec, tc.cfg)
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			var hit *Diagnostic
			for i := range rep.Diagnostics {
				d := &rep.Diagnostics[i]
				if d.Code == tc.code && d.Severity == speclint.SevError {
					hit = d
					break
				}
			}
			if hit == nil {
				t.Fatalf("no %s error diagnostic; got %v", tc.code, rep.Diagnostics)
			}
			if !rep.HasErrors() {
				t.Errorf("HasErrors() = false with an error diagnostic")
			}
			if len(rep.Verified) != 0 {
				t.Errorf("Verified non-empty on a failing spec: %v", rep.Verified)
			}
			if hit.Service != tc.service {
				t.Errorf("Service = %q, want %q", hit.Service, tc.service)
			}
			if len(hit.Witness) < 2 {
				t.Errorf("witness too short: %v", hit.Witness)
			}
			if hit.Repro == nil {
				t.Fatalf("no repro plan lowered")
			}
			r := hit.Repro
			if r.Service != tc.service || r.Shape != tc.shape {
				t.Errorf("repro service/shape = %q/%q, want %q/%q", r.Service, r.Shape, tc.service, tc.shape)
			}
			if len(r.Kinds) != 1 || r.Kinds[0] != tc.kind {
				t.Errorf("repro kinds = %v, want [%s]", r.Kinds, tc.kind)
			}
			if r.Predicted != tc.expected {
				t.Errorf("repro predicted = %q, want %q", r.Predicted, tc.expected)
			}
			if r.Trials != 1 || r.Seed == 0 {
				t.Errorf("repro trials/seed = %d/%d, want 1 trial with a pinned seed", r.Trials, r.Seed)
			}
			t.Logf("%s: %s", tc.code, hit.Message)
			for _, w := range hit.Witness {
				t.Logf("  witness: %s", w)
			}
		})
	}
}

// TestFixtureSpecificShapes pins the semantic details of each seeded
// violation beyond the code itself.
func TestFixtureSpecificShapes(t *testing.T) {
	t.Run("sg201_needs_fail_hard", func(t *testing.T) {
		// Under the default degrade policy the same misdeclaration is an
		// acceptable degradation, not a coverage hole.
		spec := parseFixture(t, "ramfs_retry.sg", "ramfs")
		rep, err := Check(spec, Config{})
		if err != nil {
			t.Fatalf("check: %v", err)
		}
		for _, d := range rep.Diagnostics {
			if d.Code == "SG201" {
				t.Errorf("SG201 reported under degrade policy: %s", d)
			}
		}
	})
	t.Run("sg202_witness_names_wait", func(t *testing.T) {
		spec := parseFixture(t, "event_noreset.sg", "event")
		rep, err := Check(spec, Config{})
		if err != nil {
			t.Fatalf("check: %v", err)
		}
		found := false
		for _, d := range rep.Diagnostics {
			if d.Code != "SG202" {
				continue
			}
			found = true
			joined := strings.Join(d.Witness, "\n")
			if !strings.Contains(joined, "evt_wait") {
				t.Errorf("SG202 witness does not name the broken wait:\n%s", joined)
			}
		}
		if !found {
			t.Fatalf("no SG202 diagnostic")
		}
	})
	t.Run("sg203_single_fault_under_declared_supervision", func(t *testing.T) {
		// The same fixture checked WITH an explicit supervision strategy
		// reports SG203 from the main pass, naming that strategy.
		spec := parseFixture(t, "ramfs_noclass.sg", "ramfs")
		rep, err := Check(spec, Config{Supervision: "all-for-one"})
		if err != nil {
			t.Fatalf("check: %v", err)
		}
		found := false
		for _, d := range rep.Diagnostics {
			if d.Code == "SG203" && d.Severity == speclint.SevError {
				found = true
				if !strings.Contains(d.Message, "all-for-one") {
					t.Errorf("SG203 message does not name the strategy: %s", d.Message)
				}
			}
		}
		if !found {
			t.Fatalf("no SG203 error under explicit supervision")
		}
	})
	t.Run("sg204_lowered_budget_note", func(t *testing.T) {
		spec := parseFixture(t, "lock_budget1.sg", "lock")
		rep, err := Check(spec, Config{})
		if err != nil {
			t.Fatalf("check: %v", err)
		}
		for _, d := range rep.Diagnostics {
			if d.Code != "SG204" {
				continue
			}
			if d.Repro == nil {
				t.Fatalf("no repro")
			}
			if d.Repro.MaxRetries != 1 {
				t.Errorf("repro MaxRetries = %d, want the spec budget 1", d.Repro.MaxRetries)
			}
			if d.Repro.StormFaults < 1 {
				t.Errorf("repro secondaries = %d, want >= 1", d.Repro.StormFaults)
			}
			return
		}
		t.Fatalf("no SG204 diagnostic")
	})
}

// TestBuiltinsCleanAcrossPolicies is the property-test satellite: clean
// specs stay clean across seeds and policy variations. The walk-retry
// budget must exceed the during-recovery secondary count (a genuine
// configuration constraint, documented in MODELCHECK.md), so MaxRetries
// stays >= 4.
func TestBuiltinsCleanAcrossPolicies(t *testing.T) {
	strategies := []string{"", "one-for-one", "rest-for-one", "all-for-one"}
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			Descs:          1 + rng.Intn(2),
			Threads:        1 + rng.Intn(2),
			MaxRetries:     4 + rng.Intn(12),
			CascadeRetries: 1 + rng.Intn(4),
			Supervision:    strategies[rng.Intn(len(strategies))],
			Secondaries:    1 + rng.Intn(2),
		}
		for _, src := range builtin.Sources() {
			spec, err := idl.Parse(src.Service, src.IDL)
			if err != nil {
				t.Fatalf("parse %s: %v", src.Service, err)
			}
			rep, err := Check(spec, cfg)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, src.Service, err)
			}
			if rep.HasErrors() {
				for _, d := range rep.Diagnostics {
					t.Errorf("seed %d cfg %+v: %s", seed, cfg, d)
				}
			}
		}
	}
}

// TestCheckDeterministic: two runs of the same check produce identical
// diagnostics, witnesses, and repro plans.
func TestCheckDeterministic(t *testing.T) {
	spec := parseFixture(t, "lock_budget1.sg", "lock")
	a, err := Check(spec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Check(spec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Diagnostics, b.Diagnostics) {
		t.Errorf("diagnostics differ between runs:\n%v\n%v", a.Diagnostics, b.Diagnostics)
	}
	if a.States != b.States || a.Episodes != b.Episodes {
		t.Errorf("state counts differ: %d/%d vs %d/%d", a.States, a.Episodes, b.States, b.Episodes)
	}
}

// TestBudgetEnforced: a tiny MaxStates budget fails loudly instead of
// truncating the pass.
func TestBudgetEnforced(t *testing.T) {
	spec := parseBuiltin(t, "lock")
	_, err := Check(spec, Config{MaxStates: 3})
	if err == nil {
		t.Fatalf("no error with MaxStates=3")
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Errorf("error does not mention the budget: %v", err)
	}
}

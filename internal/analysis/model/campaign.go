package model

import (
	"fmt"

	"superglue/internal/core"
	"superglue/internal/fault"
	"superglue/internal/swifi"
)

// CampaignConfig lowers the repro plan to a runnable SWIFI campaign over
// the service's builtin workload: the dynamic trial that replays the
// static counterexample. It fails when the plan's service has no builtin
// workload (fixture-only services) or a field does not parse.
func (r *Repro) CampaignConfig() (swifi.Config, error) {
	w, ok := swifi.Workloads()[r.Service]
	if !ok {
		return swifi.Config{}, fmt.Errorf("model: no builtin workload for service %q", r.Service)
	}
	shape, ok := swifi.ParseShape(r.Shape)
	if !ok {
		return swifi.Config{}, fmt.Errorf("model: unknown campaign shape %q", r.Shape)
	}
	var kinds []fault.Kind
	for _, name := range r.Kinds {
		k, known := fault.ParseKind(name)
		if !known {
			return swifi.Config{}, fmt.Errorf("model: unknown fault kind %q", name)
		}
		kinds = append(kinds, k)
	}
	cfg := swifi.Config{
		Service:      r.Service,
		Workload:     w,
		Iters:        5,
		Trials:       r.Trials,
		Seed:         r.Seed,
		Profile:      swifi.Profiles()[r.Service],
		Watchdog:     true,
		Shape:        shape,
		Kinds:        kinds,
		StormFaults:  r.StormFaults,
		Policy:       r.Policy,
		FaultActions: r.FaultActions,
	}
	if r.MaxRetries > 0 || r.CascadeRetries > 0 || r.FailHard {
		cfg.Recovery = &core.RecoveryPolicy{
			MaxRetries:     r.MaxRetries,
			CascadeRetries: r.CascadeRetries,
			Degrade:        !r.FailHard,
		}
	}
	return cfg, nil
}

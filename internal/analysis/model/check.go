package model

import (
	"fmt"
	"sort"
	"time"

	"superglue/internal/analysis/speclint"
	"superglue/internal/fault"
)

// check runs the full analysis: operational BFS, then per-configuration
// fault injection (single and during-recovery), under the configured
// policy and — for the restart-intensity property — under a supervision
// tree (the configured strategy, or one-for-one when none is set).
func (m *machine) check() (*Report, error) {
	started := time.Now()
	var deadline time.Time
	if m.cfg.Deadline > 0 {
		deadline = started.Add(m.cfg.Deadline)
	}
	rep := &Report{Service: m.spec.Service, Descs: m.cfg.Descs, Threads: m.cfg.Threads}

	visited, trajectory, err := m.explore(deadline)
	if err != nil {
		rep.Trajectory = trajectory
		return rep, err
	}
	rep.States = len(visited)
	rep.Trajectory = trajectory

	// Deterministic configuration order for episode passes.
	confs := make([]conf, 0, len(visited))
	for c := range visited {
		confs = append(confs, c)
	}
	sort.Slice(confs, func(i, j int) bool { return confLess(confs[i], confs[j]) })

	type finding struct {
		diag Diagnostic
		ord  int // tie-break: earlier configurations win
	}
	found := make(map[string]finding) // key: code + kind (+ mode)
	report := func(key string, ord int, d Diagnostic) {
		if prev, ok := found[key]; ok && prev.ord <= ord {
			return
		}
		found[key] = finding{diag: d, ord: ord}
	}

	supervised := m.cfg.Supervision != ""
	strategy := m.cfg.Supervision
	if strategy == "" {
		strategy = "one-for-one"
	}
	// maxReboots tracks the heaviest single-fault restart load per kind
	// (supervised pass) for the storm-burst analysis.
	maxReboots := make(map[fault.Kind]int)
	maxRebootConf := make(map[fault.Kind]conf)

	maxLen := 0
	budgetErr := func() error {
		if rep.EpisodeStates > m.cfg.MaxStates {
			return fmt.Errorf("model: %s: state budget %d exceeded (episodes)", m.spec.Service, m.cfg.MaxStates)
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return fmt.Errorf("model: %s: deadline exceeded during episode pass", m.spec.Service)
		}
		return nil
	}

	for ord, c := range confs {
		for _, k := range m.cfg.Kinds {
			// Single-fault episode under the configured (flat or
			// supervised) escalation regime: P1, P2.
			r := m.runEpisode(c, k, k, 0, supervised)
			rep.Episodes++
			rep.EpisodeStates += r.steps
			if r.steps > maxLen {
				maxLen = r.steps
			}
			m.judge(report, "single", ord, visited, c, k, r, supervised)

			// Supervised single-fault episode: P3 (restart-intensity
			// unreachable from one fault). Skipped when the main pass is
			// already supervised.
			if !supervised {
				rs := m.runEpisode(c, k, k, 0, true)
				rep.Episodes++
				rep.EpisodeStates += rs.steps
				if rs.outcome == OutIntensity {
					key := "SG203|" + k.String()
					report(key, ord, m.intensityDiag(visited, c, k, rs, strategy))
				}
				if rs.reboots > maxReboots[k] {
					maxReboots[k] = rs.reboots
					maxRebootConf[k] = c
				}
			} else {
				if r.reboots > maxReboots[k] {
					maxReboots[k] = r.reboots
					maxRebootConf[k] = c
				}
			}

			// During-recovery episode: the secondary fault fires while
			// the recovery walk replays — P4 (and P1/P2 under the shape).
			if m.cfg.Secondaries > 0 {
				rd := m.runEpisode(c, k, k, m.cfg.Secondaries, supervised)
				rep.Episodes++
				rep.EpisodeStates += rd.steps
				if rd.steps > maxLen {
					maxLen = rd.steps
				}
				m.judge(report, "during-recovery", ord, visited, c, k, rd, supervised)
			}
		}
		if err := budgetErr(); err != nil {
			return rep, err
		}
	}

	// Storm analysis: the minimal burst of the restart-heaviest kind
	// that exhausts the supervision window, flagged with a witness (the
	// dynamic analog is the storm shape's restart-intensity stress).
	worst, worstN := fault.KindUnknown, 0
	for _, k := range m.cfg.Kinds {
		if maxReboots[k] > worstN || (maxReboots[k] == worstN && worst != fault.KindUnknown && k.String() < worst.String()) {
			worst, worstN = k, maxReboots[k]
		}
	}
	if worstN > 0 {
		if _, bad := found["SG203|"+worst.String()]; !bad {
			burst := m.cfg.RestartIntensity/worstN + 1
			c := maxRebootConf[worst]
			d := Diagnostic{
				Code: "SG203", Severity: speclint.SevInfo, Service: m.spec.Service,
				Message: fmt.Sprintf("storm shape: %d %s faults within one supervision window exhaust the root %s restart budget (%d reboots per fault, intensity %d)",
					burst, worst, strategy, worstN, m.cfg.RestartIntensity),
				Witness: append(path(visited, c),
					fmt.Sprintf("each %s fault forces %d server restart(s); %d faults within %d virtual-time units charge past the budget", worst, worstN, burst, 10000)),
			}
			d.Repro = m.lowerStorm(worst, burst, strategy)
			report("SG203|storm", len(confs), d)
		}
	}

	// Assemble deterministically: code, then kind key.
	keys := make([]string, 0, len(found))
	for k := range found {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rep.Diagnostics = append(rep.Diagnostics, found[k].diag)
	}
	if !rep.HasErrors() {
		rep.Verified = []string{
			fmt.Sprintf("P1 recovery coverage: every kind in every configuration reaches recovered/degraded (%d episodes)", rep.Episodes),
			fmt.Sprintf("P2 walk termination: no hold-replay or wakeup-replay cycle (longest episode %d steps)", maxLen),
			fmt.Sprintf("P3 restart intensity: unreachable from any single fault under %s supervision (budget %d)", strategy, m.cfg.RestartIntensity),
			fmt.Sprintf("P4 held descriptors: no mid-recovery fault strands a hold (%d during-recovery secondaries)", m.cfg.Secondaries),
		}
	}
	rep.Elapsed = time.Since(started)
	return rep, nil
}

// judge classifies one episode result against properties P1, P2, P4.
func (m *machine) judge(report func(string, int, Diagnostic), mode string, ord int, visited map[conf]edge, c conf, k fault.Kind, r epResult, supervised bool) {
	witness := func() []string {
		w := path(visited, c)
		if len(w) == 0 {
			w = []string{"start from the empty configuration"}
		}
		return append(w, r.trace...)
	}
	switch r.outcome {
	case OutCycle:
		report("SG202|"+k.String(), ord, Diagnostic{
			Code: "SG202", Severity: speclint.SevError, Service: m.spec.Service,
			Message: fmt.Sprintf("recovery of a %s fault does not terminate: replay cycle in %s", k, m.confString(c)),
			Witness: witness(),
			Repro:   m.lowerSingle(k, OutCycle, "spec-shape cycle: the dynamic analog is a hang of the recovering thread"),
		})
	case OutFailed:
		report("SG201|"+k.String(), ord, Diagnostic{
			Code: "SG201", Severity: speclint.SevError, Service: m.spec.Service,
			Message: fmt.Sprintf("a %s fault injected in %s reaches neither a recovered nor a degraded terminal (%s)", k, m.confString(c), mode),
			Witness: witness(),
			Repro:   m.lowerForMode(mode, k, OutFailed),
		})
	case OutIntensity:
		if supervised {
			report("SG203|"+k.String(), ord, m.intensityDiag(visited, c, k, r, m.cfg.Supervision))
		}
	}
	if mode == "during-recovery" && r.strandedHold {
		report("SG204|"+k.String(), ord, Diagnostic{
			Code: "SG204", Severity: speclint.SevError, Service: m.spec.Service,
			Message: fmt.Sprintf("a mid-recovery %s fault strands a held descriptor: the episode ends %s with the hold dropped and never replayed", k, r.outcome),
			Witness: witness(),
			Repro:   m.lowerForMode(mode, k, r.outcome),
		})
	}
}

// intensityDiag builds the single-fault restart-intensity diagnostic.
func (m *machine) intensityDiag(visited map[conf]edge, c conf, k fault.Kind, r epResult, strategy string) Diagnostic {
	if strategy == "" {
		strategy = "one-for-one"
	}
	w := path(visited, c)
	if len(w) == 0 {
		w = []string{"start from the empty configuration"}
	}
	return Diagnostic{
		Code: "SG203", Severity: speclint.SevError, Service: m.spec.Service,
		Message: fmt.Sprintf("a single %s fault exhausts the %s supervisor's restart-intensity budget (%d): ErrRestartIntensity is reachable without a storm", k, strategy, m.cfg.RestartIntensity),
		Witness: append(w, r.trace...),
		Repro:   m.lowerIntensity(k, strategy),
	}
}

// confLess orders configurations deterministically (fewest live
// descriptors and threads first, then lexicographic).
func confLess(a, b conf) bool {
	for i := range a.d {
		if a.d[i] != b.d[i] {
			return a.d[i] < b.d[i]
		}
	}
	for i := range a.t {
		if a.t[i] != b.t[i] {
			return a.t[i] < b.t[i]
		}
	}
	return false
}

package model

import (
	"fmt"

	"superglue/internal/core"
	"superglue/internal/fault"
)

// Outcome classifies one simulated recovery episode, mirroring the
// dynamic Table II columns the checker predicts.
type Outcome int

// Episode outcomes.
const (
	// OutRecovered: the fault was absorbed and every descriptor, hold,
	// and blocked thread was re-established.
	OutRecovered Outcome = iota + 1
	// OutDegraded: the escalation ladder exhausted its budget and the
	// call returned the typed degradation error (RecoveryPolicy.Degrade).
	OutDegraded
	// OutIntensity: a server restart exceeded the supervision tree's
	// restart-intensity budget (core.ErrRestartIntensity) and the call
	// degraded through the supervisor.
	OutIntensity
	// OutFailed: recovery gave up without a degradation contract
	// (ErrRecoveryFailed under a fail-hard policy) — the P1 violation.
	OutFailed
	// OutCycle: the episode revisited a configuration and can loop
	// forever (a hold-replay or wakeup-replay cycle) — the P2 violation.
	OutCycle
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutRecovered:
		return "recovered"
	case OutDegraded:
		return "degraded"
	case OutIntensity:
		return "degraded (restart intensity)"
	case OutFailed:
		return "failed"
	case OutCycle:
		return "non-terminating"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// PredictedTrial maps an episode outcome to the swifi campaign outcome
// a lowered repro plan should observe. Failure outcomes predict the
// "not recovered" family rather than a variant: whether the stub error
// aborts the run ("other") or surfaces through the workload checker
// ("propagated") depends on the workload, not the spec, so the dynamic
// outcome agrees when it has the predicted string as a prefix.
func (o Outcome) PredictedTrial() string {
	switch o {
	case OutRecovered:
		return "recovered"
	case OutDegraded, OutIntensity:
		return "degraded"
	default:
		return "not recovered"
	}
}

// epResult is one episode's verdict.
type epResult struct {
	outcome Outcome
	trace   []string
	// strandedHold: the episode ended with a thread's tracked hold
	// dropped by a µ-reboot and never replayed (P4 violation when a
	// during-recovery secondary caused it).
	strandedHold bool
	steps        int
	reboots      int
}

// episode simulates one fault's recovery deterministically, mirroring
// the client stub's escalation ladder (cstub.go), the recovery-walk
// engine (recovery.go), and supervision charging (supervisor.go).
type episode struct {
	m *machine
	c conf

	trace   []string
	steps   int
	reboots int

	attempt     int // escalation-ladder attempts
	walkAttempt int // recovery-walk retries (mid-walk faults)

	// intensity is the remaining supervision restart budget; -1 models
	// the flat ladder (no supervisor, nothing charges).
	intensity int

	secKind fault.Kind
	secLeft int

	corrupt bool // a redundant storage extent is corrupted (persists)
}

func (ep *episode) tracef(format string, args ...any) {
	ep.trace = append(ep.trace, fmt.Sprintf(format, args...))
}

// maxEpisodeSteps is a safety net: episodes are bounded by the attempt
// counters, so hitting this means a checker bug, reported as a cycle.
const maxEpisodeSteps = 1 << 14

// runEpisode simulates the recovery of one injected fault from
// configuration start. secCount > 0 arms that many during-recovery
// secondary faults of secKind, each fired at the first walk step after a
// µ-reboot (the dynamic during-recovery shape's deferred injection).
// supervised selects restart-intensity charging.
func (m *machine) runEpisode(start conf, pk fault.Kind, secKind fault.Kind, secCount int, supervised bool) epResult {
	ep := &episode{m: m, c: start, secKind: secKind, secLeft: secCount, intensity: -1}
	if supervised {
		ep.intensity = m.cfg.RestartIntensity
	}
	ep.tracef("inject %s in %s", pk, m.confString(start))
	pending := pk
	for {
		ep.steps++
		if ep.steps > maxEpisodeSteps {
			ep.tracef("episode exceeded %d steps without terminating", maxEpisodeSteps)
			return ep.finish(OutCycle)
		}
		act := m.routeKind(pending)
		switch act {
		case core.ActionRetry:
			if pending.Transient() {
				ep.tracef("route %s → retry: retransmission absorbs the transient", pending)
				return ep.finish(OutRecovered)
			}
			ep.attempt++
			ep.tracef("route %s → retry: redo hits the persistent fault again (attempt %d/%d)",
				pending, ep.attempt, m.maxAttempts)
			if ep.attempt >= m.maxAttempts {
				return ep.exhausted("retry rung exhausted without clearing the fault")
			}
		case core.ActionDegrade:
			ep.tracef("route %s → degrade: ladder gives the call up immediately", pending)
			return ep.exhausted("declared sm_fault degrade")
		default: // ActionReboot / ActionDefault
			if pending == fault.KindStorageCrash {
				// The stub's storage-dependency path: the faulting
				// component is storage, so it (not the server) is
				// µ-rebooted; redundant data survives and the invocation
				// is redone. No supervision charge for the target.
				ep.tracef("route %s → reboot: storage µ-reboot (G0/G1: redundant data survives), redo succeeds", pending)
				return ep.finish(OutRecovered)
			}
			if pending == fault.KindStorageCorruption && m.spec.RescHasData && !ep.corrupt {
				ep.corrupt = true
				ep.tracef("storage-corruption lands in a redundant extent of the saved class")
			}
			res, done := ep.rebootAndRecover(&pending)
			if done {
				return res
			}
			// A restore step re-detected a fault; pending was updated and
			// the ladder routes it afresh.
		}
	}
}

// exhausted ends the episode the way RecoveryPolicy.exhausted does:
// degrade (typed DegradedError) or fail hard (ErrRecoveryFailed).
func (ep *episode) exhausted(why string) epResult {
	if ep.m.cfg.FailHard {
		ep.tracef("budget exhausted (%s) → ErrRecoveryFailed (fail-hard policy)", why)
		return ep.finish(OutFailed)
	}
	ep.tracef("budget exhausted (%s) → typed degradation (DegradedError)", why)
	return ep.finish(OutDegraded)
}

// finish snapshots the episode verdict, flagging stranded holds: a
// thread still marked holding while the server-side hold was dropped by
// a µ-reboot and never replayed.
func (ep *episode) finish(out Outcome) epResult {
	stranded := false
	if ep.reboots > 0 && out != OutRecovered {
		for i := 0; i < ep.m.cfg.Threads; i++ {
			if ep.c.t[i] >= holdingOf(0) {
				d := int(ep.c.t[i]) - 1 - maxK
				if ep.c.d[d] >= descLive {
					stranded = true
					ep.tracef("thread still owns its hold on d%d, but the µ-rebooted server never had it replayed", d)
				}
			}
		}
	}
	return epResult{outcome: out, trace: ep.trace, strandedHold: stranded, steps: ep.steps, reboots: ep.reboots}
}

// rebootAndRecover performs one or more server µ-reboots with their
// recovery walks. It returns done=false when a restore step re-detected
// a fault (pending updated; the caller re-routes it through the ladder).
func (ep *episode) rebootAndRecover(pending *fault.Kind) (epResult, bool) {
	m := ep.m
	for {
		// One server µ-reboot: supervision charge, server state lost.
		ep.reboots++
		if ep.intensity >= 0 {
			ep.intensity--
			if ep.intensity < 0 {
				ep.tracef("µ-reboot #%d: restart-intensity budget exhausted → ErrRestartIntensity, supervisor degrades the subtree", ep.reboots)
				return ep.finish(OutIntensity), true
			}
			ep.tracef("µ-reboot #%d of the server (supervisor charge, %d left in window); descriptors stale", ep.reboots, ep.intensity)
		} else {
			ep.tracef("µ-reboot #%d of the server; descriptors stale", ep.reboots)
		}
		cascade := ""
		if ep.attempt >= m.cfg.MaxRetries {
			cascade = " (cascade rung: dependencies rebooted leaves-first)"
		}
		if cascade != "" {
			ep.tracef("escalation ladder past plain redos%s", cascade)
		}

		// Recovery walks, eager, in descriptor order (parents are
		// lower-indexed, so D1 ordering holds by construction).
		live := make([]int, 0, m.cfg.Descs)
		for d := 0; d < m.cfg.Descs; d++ {
			if ep.c.d[d] >= descLive {
				live = append(live, d)
			}
		}
		if len(live) == 0 {
			ep.tracef("no live descriptors to recover")
			return ep.finish(OutRecovered), true
		}
		secondaryFired := false
		for _, d := range live {
			expected := m.stateName(ep.c.d[d])
			if m.spec.DescHasParent != core.ParentSolo {
				ep.tracef("D1: d%d's parent descriptor recovered first", d)
				ep.steps++
			}
			if m.spec.DescIsGlobal {
				ep.tracef("G0: d%d's namespace entry remapped from storage", d)
				ep.steps++
			}
			walk, err := m.recoveryWalk(expected)
			if err != nil {
				ep.tracef("no recovery walk for d%d in %s: %v", d, expected, err)
				return ep.exhausted("missing recovery walk"), true
			}
			for i, fn := range walk {
				ep.steps++
				if ep.steps > maxEpisodeSteps {
					ep.tracef("episode exceeded %d steps without terminating", maxEpisodeSteps)
					return ep.finish(OutCycle), true
				}
				if !secondaryFired && ep.secLeft > 0 && i == 0 && d == live[0] {
					// The during-recovery shape: the deferred secondary
					// fires at the first target entry of the new epoch —
					// the walk's first replayed invocation.
					secondaryFired = true
					ep.secLeft--
					ep.walkAttempt++
					ep.tracef("during-recovery: secondary %s fires at walk step %s (walk retry %d/%d)",
						ep.secKind, fn, ep.walkAttempt, m.walkBound)
					if ep.walkAttempt >= m.walkBound {
						ep.tracef("recovery-walk retry budget exhausted: walk abandoned mid-recovery")
						return ep.exhausted("recovery-walk retries exhausted"), true
					}
					break
				}
				if m.spec.IsRestore(fn) && ep.corrupt {
					ep.tracef("G1: %s re-reads the corrupt extent — storage-corruption re-detected", fn)
					*pending = fault.KindStorageCorruption
					ep.attempt++
					if ep.attempt >= m.maxAttempts {
						return ep.exhausted("restore retried into the same corrupt data"), true
					}
					return epResult{}, false
				}
				ep.tracef("R0: walk d%d step %d: %s", d, i+1, fn)
			}
			if secondaryFired {
				break
			}
		}
		if secondaryFired {
			continue // re-reboot and replay the walks
		}

		// Hold replay: each holding thread re-establishes its hold.
		for i := 0; i < m.cfg.Threads; i++ {
			if ep.c.t[i] >= holdingOf(0) {
				d := int(ep.c.t[i]) - 1 - maxK
				if ep.c.d[d] >= descLive && len(m.holdFns) > 0 {
					ep.steps++
					ep.tracef("T0: replay hold %s on d%d for its owner", m.holdFns[0], d)
				}
			}
		}

		// T0/T1 wake: blocked threads re-enter their waits. With an
		// sm_hold protocol they re-contend the hold; with sm_reset they
		// re-contend the wait (a future wakeup completes it). With
		// neither, the replayed wait re-blocks immediately and recovery
		// is back where it started: a wakeup-replay cycle.
		for i := 0; i < m.cfg.Threads; i++ {
			if ep.c.t[i] == threadIdle || ep.c.t[i] >= holdingOf(0) {
				continue
			}
			d := int(ep.c.t[i]) - 1
			if ep.c.d[d] < descLive {
				ep.tracef("thread blocked on d%d stays parked (descriptor closed; no wakeup can arrive)", d)
				continue
			}
			ep.steps++
			if len(m.holdFns) > 0 {
				ep.tracef("T0: thread blocked on d%d re-contends the hold", d)
				continue
			}
			if len(m.brokenBlocks) > 0 {
				fn := m.brokenBlocks[0]
				ep.tracef("T0: wake replays %s for the thread blocked on d%d; %s has neither sm_hold nor sm_reset, so it re-blocks", fn, d, fn)
				ep.tracef("episode revisits %s — wakeup-replay cycle, recovery never terminates", m.confString(ep.c))
				return ep.finish(OutCycle), true
			}
			ep.tracef("T0: thread blocked on d%d re-contends its wait (sm_reset)", d)
		}
		ep.tracef("all descriptors fresh, holds replayed: recovered")
		return ep.finish(OutRecovered), true
	}
}

// recoveryWalk is the spec's full recovery sequence to the expected
// state: creation, the precomputed shortest pure path, the sm_restore
// tail.
func (m *machine) recoveryWalk(expected string) ([]string, error) {
	if len(m.creation) == 0 {
		return nil, fmt.Errorf("model: %s: no creation function", m.spec.Service)
	}
	return m.sm.RecoveryWalk(m.creation[0], expected)
}

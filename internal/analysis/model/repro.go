package model

import (
	"fmt"

	"superglue/internal/fault"
)

// Repro is a concrete SWIFI injection plan lowered from a model-checker
// witness: a swifi.Config-shaped recipe (service, campaign shape, kind
// pool, seed, trial schedule, policy knobs) that replays the static
// counterexample as one deterministic dynamic trial. The routing layers
// the checker assumed are carried along: FaultActions installs the same
// effective per-kind actions through core.System.HandleFault (the
// handler layer precedes sm_fault declarations, so a broken fixture
// spec's policy can be replayed onto the corresponding builtin
// workload), and MaxRetries/CascadeRetries/FailHard pin the recovery
// policy the witness was checked under.
type Repro struct {
	// Service is the workload/campaign target (the spec's service name;
	// for fixture specs derived from a builtin service, the builtin's
	// workload drives the plan).
	Service string `json:"service"`
	// Shape is the swifi campaign shape ("storm" or "during-recovery").
	Shape string `json:"shape"`
	// Kinds is the fault-kind pool. Witness plans pin a single kind (or
	// a primary/secondary pair), making the planner's kind draws
	// deterministic for any seed.
	Kinds []string `json:"kinds"`
	// StormFaults is the storm burst size, or the during-recovery
	// deferred-secondary count.
	StormFaults int `json:"storm_faults,omitempty"`
	// Trials and Seed: the plan is trial 0 of a 1-trial campaign.
	Trials int   `json:"trials"`
	Seed   int64 `json:"seed"`
	// Policy is the supervision strategy to install per trial.
	Policy string `json:"policy,omitempty"`
	// FaultActions are runtime per-kind action overrides (HandleFault).
	FaultActions map[string]string `json:"fault_actions,omitempty"`
	// MaxRetries/CascadeRetries/FailHard pin the recovery policy.
	MaxRetries     int  `json:"max_retries,omitempty"`
	CascadeRetries int  `json:"cascade_retries,omitempty"`
	FailHard       bool `json:"fail_hard,omitempty"`
	// Predicted is the swifi outcome string the trial must classify as
	// for the dynamic run to agree with the static verdict.
	Predicted string `json:"predicted"`
	// Note carries caveats (e.g. spec-shape witnesses that need the
	// broken spec's stubs rather than a policy override).
	Note string `json:"note,omitempty"`
}

// reproSeed is the fixed campaign seed of lowered plans. Witness plans
// restrict the kind pool to the witness's kinds, so the planner's kind
// draws are seed-independent and any fixed seed yields the plan.
const reproSeed = 1

// effectiveActions collects the per-kind routing the checker used for
// the given kinds (handler layer merged over sm_fault declarations), as
// HandleFault overrides for the dynamic run.
func (m *machine) effectiveActions(kinds ...fault.Kind) map[string]string {
	out := make(map[string]string)
	for _, k := range kinds {
		out[k.String()] = m.routeKind(k).String()
	}
	return out
}

// lowerSingle lowers a single-fault witness to a 1-trial storm plan
// (burst size 1: exactly one typed fault of the witness kind).
func (m *machine) lowerSingle(k fault.Kind, out Outcome, note string) *Repro {
	r := &Repro{
		Service:      m.spec.Service,
		Shape:        "storm",
		Kinds:        []string{k.String()},
		StormFaults:  1,
		Trials:       1,
		Seed:         reproSeed,
		Policy:       m.cfg.Supervision,
		FaultActions: m.effectiveActions(k),
		Predicted:    out.PredictedTrial(),
		Note:         note,
	}
	m.pinPolicy(r)
	return r
}

// lowerForMode lowers a witness according to the episode mode it was
// found in.
func (m *machine) lowerForMode(mode string, k fault.Kind, out Outcome) *Repro {
	if mode != "during-recovery" {
		return m.lowerSingle(k, out, "")
	}
	r := &Repro{
		Service:      m.spec.Service,
		Shape:        "during-recovery",
		Kinds:        []string{k.String()},
		StormFaults:  m.cfg.Secondaries,
		Trials:       1,
		Seed:         reproSeed,
		Policy:       m.cfg.Supervision,
		FaultActions: m.effectiveActions(k),
		Predicted:    out.PredictedTrial(),
	}
	m.pinPolicy(r)
	if m.spec.RecoveryBudget > 0 {
		// The fixture's recovery_budget is spec-compiled; replaying it on
		// a builtin workload pins the same walk-retry bound through the
		// system policy instead.
		r.MaxRetries = m.spec.RecoveryBudget
		r.Note = fmt.Sprintf("recovery_budget %d replayed as MaxRetries for the builtin workload", m.spec.RecoveryBudget)
	}
	return r
}

// lowerIntensity lowers an SG203 single-fault witness: one fault whose
// reboot loop charges past the supervision budget.
func (m *machine) lowerIntensity(k fault.Kind, strategy string) *Repro {
	r := m.lowerSingle(k, OutIntensity, "")
	r.Policy = strategy
	return r
}

// lowerStorm lowers the SG203 storm-burst analysis: a burst of the
// restart-heaviest kind sized to exhaust the supervision window.
func (m *machine) lowerStorm(k fault.Kind, burst int, strategy string) *Repro {
	r := &Repro{
		Service:      m.spec.Service,
		Shape:        "storm",
		Kinds:        []string{k.String()},
		StormFaults:  burst,
		Trials:       1,
		Seed:         reproSeed,
		Policy:       strategy,
		FaultActions: m.effectiveActions(k),
		Predicted:    OutIntensity.PredictedTrial(),
	}
	m.pinPolicy(r)
	return r
}

// pinPolicy copies the checker's recovery-policy knobs into the plan.
func (m *machine) pinPolicy(r *Repro) {
	r.MaxRetries = m.cfg.MaxRetries
	r.CascadeRetries = m.cfg.CascadeRetries
	r.FailHard = m.cfg.FailHard
}

package driftcheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"superglue/internal/codegen"
	"superglue/internal/idl"
	"superglue/internal/services/builtin"
)

// writeFreshTree generates all built-in stubs into dir, mirroring
// `sgc -builtin -o dir`.
func writeFreshTree(t *testing.T, dir string) {
	t.Helper()
	for _, b := range builtin.Sources() {
		spec, err := idl.Parse(b.Service, b.IDL)
		if err != nil {
			t.Fatal(err)
		}
		ir, err := codegen.NewIR(spec)
		if err != nil {
			t.Fatal(err)
		}
		files, err := codegen.Generate(ir)
		if err != nil {
			t.Fatal(err)
		}
		pkgDir := filepath.Join(dir, ir.Package())
		if err := os.MkdirAll(pkgDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for fname, content := range files {
			if err := os.WriteFile(filepath.Join(pkgDir, fname), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestFreshTreeHasNoDrift(t *testing.T) {
	dir := t.TempDir()
	writeFreshTree(t, dir)
	drifts, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(drifts) != 0 {
		t.Fatalf("fresh tree reports drift: %v", drifts)
	}
}

// TestMutatedStubIsCaught is the core drift guarantee: hand-editing a
// generated file makes the check fail, naming exactly that file.
func TestMutatedStubIsCaught(t *testing.T) {
	dir := t.TempDir()
	writeFreshTree(t, dir)

	victim := filepath.Join(dir, "genevent", "client_stub.go")
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), "func ", "// tampered\nfunc ", 1)
	if tampered == string(data) {
		t.Fatal("mutation did not change the file")
	}
	if err := os.WriteFile(victim, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}

	drifts, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(drifts) != 1 {
		t.Fatalf("drifts = %v, want exactly the tampered file", drifts)
	}
	if drifts[0].Path != filepath.Join("genevent", "client_stub.go") {
		t.Errorf("drift path = %q", drifts[0].Path)
	}
	if !strings.Contains(drifts[0].Reason, "stale") || !strings.Contains(drifts[0].Reason, "line") {
		t.Errorf("stale drift should cite the first differing line: %q", drifts[0].Reason)
	}
}

func TestMissingStubIsCaught(t *testing.T) {
	dir := t.TempDir()
	writeFreshTree(t, dir)
	if err := os.Remove(filepath.Join(dir, "genlock", "server_stub.go")); err != nil {
		t.Fatal(err)
	}
	drifts, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(drifts) != 1 || drifts[0].Reason != "missing" {
		t.Fatalf("drifts = %v, want one missing-file drift", drifts)
	}
}

// TestCommittedTree double-checks the real repository state from this
// package's vantage point (the same check internal/gen's golden test and
// `sgc vet -gen` run).
func TestCommittedTree(t *testing.T) {
	drifts, err := Check(filepath.Join("..", "..", "gen"))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range drifts {
		t.Error(d)
	}
}

func TestFirstDiffLine(t *testing.T) {
	cases := []struct {
		got, want string
		line      int
	}{
		{"a\nb\nc", "a\nb\nc", 4}, // equal: diff position is one past the end
		{"a\nX\nc", "a\nb\nc", 2},
		{"a", "a\nb", 2},
		{"X", "a", 1},
	}
	for _, tc := range cases {
		if got := firstDiffLine(tc.got, tc.want); got != tc.line {
			t.Errorf("firstDiffLine(%q, %q) = %d, want %d", tc.got, tc.want, got, tc.line)
		}
	}
}

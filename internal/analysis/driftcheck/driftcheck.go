// Package driftcheck re-runs the IDL compiler over the built-in service
// specifications and diffs the output against the committed generated
// packages. A generated stub edited by hand, or a generator change shipped
// without regenerating, shows up as drift: the committed file no longer
// matches what sgc produces from the spec. `sgc vet -gen` and `make lint`
// run this check so the tree property "internal/gen is exactly
// `sgc -builtin -o internal/gen`" is enforced, not assumed.
package driftcheck

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"superglue/internal/codegen"
	"superglue/internal/idl"
	"superglue/internal/services/builtin"
)

// Drift describes one committed file that disagrees with the generator.
type Drift struct {
	// Path is the offending file, relative to the gen directory root.
	Path string
	// Reason is "missing" or "stale"; stale drifts carry the first
	// differing line.
	Reason string
}

// String renders the drift finding with its remediation command.
func (d Drift) String() string {
	return fmt.Sprintf("%s: %s (regenerate with `go run ./cmd/sgc -builtin -o internal/gen`)", d.Path, d.Reason)
}

// Check regenerates every built-in service's stubs and compares them with
// the files under genDir. It returns one Drift per mismatched or missing
// file; an empty slice means the committed tree matches the generator.
func Check(genDir string) ([]Drift, error) {
	var drifts []Drift
	for _, b := range builtin.Sources() {
		spec, err := idl.Parse(b.Service, b.IDL)
		if err != nil {
			return nil, fmt.Errorf("driftcheck: %s: %w", b.Service, err)
		}
		ir, err := codegen.NewIR(spec)
		if err != nil {
			return nil, fmt.Errorf("driftcheck: %s: %w", b.Service, err)
		}
		files, err := codegen.Generate(ir)
		if err != nil {
			return nil, fmt.Errorf("driftcheck: %s: %w", b.Service, err)
		}
		names := make([]string, 0, len(files))
		for fname := range files {
			names = append(names, fname)
		}
		sort.Strings(names)
		for _, fname := range names {
			rel := filepath.Join(ir.Package(), fname)
			got, err := os.ReadFile(filepath.Join(genDir, rel))
			if os.IsNotExist(err) {
				drifts = append(drifts, Drift{Path: rel, Reason: "missing"})
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("driftcheck: %w", err)
			}
			if want := files[fname]; string(got) != want {
				drifts = append(drifts, Drift{
					Path:   rel,
					Reason: fmt.Sprintf("stale: first difference at line %d", firstDiffLine(string(got), want)),
				})
			}
		}
	}
	return drifts, nil
}

// firstDiffLine returns the 1-based line number where got and want first
// disagree.
func firstDiffLine(got, want string) int {
	g := strings.Split(got, "\n")
	w := strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return i + 1
		}
	}
	if len(g) < len(w) {
		return len(g) + 1
	}
	return len(w) + 1
}

package sarif

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestEmptyRunHasNonNullResults: code-scanning consumers reject a null
// results array, so an empty builder must still emit [].
func TestEmptyRunHasNonNullResults(t *testing.T) {
	b := NewBuilder("tool", "")
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Errorf("empty run does not serialize results as []:\n%s", buf.String())
	}
	var log Log
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != Version || log.Schema != SchemaURI {
		t.Errorf("version/schema = %q/%q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
}

// TestRulesSortedAndAutoRegistered: rule table is sorted by ID and
// includes codes referenced only through Add.
func TestRulesSortedAndAutoRegistered(t *testing.T) {
	b := NewBuilder("tool", "docs/X.md")
	b.Rule("SG203", "restart intensity")
	b.Add("SG110", "warning", "m1", "a.sg", 3, nil)
	b.Add("SG203", "error", "m2", "b.sg", 0, map[string]any{"witness": []string{"w"}})
	log := b.Log()
	drv := log.Runs[0].Tool.Driver
	if drv.Name != "tool" || drv.InformationURI != "docs/X.md" {
		t.Errorf("driver = %+v", drv)
	}
	if len(drv.Rules) != 2 || drv.Rules[0].ID != "SG110" || drv.Rules[1].ID != "SG203" {
		t.Fatalf("rules not sorted/complete: %+v", drv.Rules)
	}
	if drv.Rules[0].ShortDescription != nil {
		t.Errorf("auto-registered rule has a description: %+v", drv.Rules[0])
	}
	if drv.Rules[1].ShortDescription == nil || drv.Rules[1].ShortDescription.Text != "restart intensity" {
		t.Errorf("registered rule lost its description: %+v", drv.Rules[1])
	}
	rs := log.Runs[0].Results
	if len(rs) != 2 {
		t.Fatalf("results = %d, want 2", len(rs))
	}
	if rs[0].Locations[0].PhysicalLocation.Region.StartLine != 3 {
		t.Errorf("line 3 lost: %+v", rs[0].Locations)
	}
	if rs[1].Locations[0].PhysicalLocation.Region != nil {
		t.Errorf("line 0 should omit the region: %+v", rs[1].Locations)
	}
	if rs[1].Properties["witness"] == nil {
		t.Errorf("properties bag lost: %+v", rs[1])
	}
}

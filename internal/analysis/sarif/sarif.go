// Package sarif emits Static Analysis Results Interchange Format (SARIF)
// 2.1.0 logs for the repo's analysis tools — speclint's SG1xx spec lints,
// the model checker's SG2xx recovery verdicts, and the sgvet runtime-
// contract analyzers — so CI can upload one machine-readable report per
// run to code-scanning backends.
//
// Only the subset of the schema those consumers require is modeled: one
// run per log, a tool driver with a rule table, and per-result message,
// level, and physical location. Witness traces and repro plans ride in
// each result's properties bag.
package sarif

import (
	"encoding/json"
	"io"
	"sort"
)

// SchemaURI and Version identify SARIF 2.1.0.
const (
	SchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	Version   = "2.1.0"
)

// Log is the top-level SARIF document.
type Log struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []Run  `json:"runs"`
}

// Run is one tool invocation.
type Run struct {
	Tool    Tool     `json:"tool"`
	Results []Result `json:"results"`
}

// Tool wraps the driver description.
type Tool struct {
	Driver Driver `json:"driver"`
}

// Driver names the analysis tool and catalogues its rules.
type Driver struct {
	Name           string `json:"name"`
	InformationURI string `json:"informationUri,omitempty"`
	Rules          []Rule `json:"rules,omitempty"`
}

// Rule describes one diagnostic code.
type Rule struct {
	ID               string   `json:"id"`
	ShortDescription *Message `json:"shortDescription,omitempty"`
}

// Message is SARIF's text wrapper.
type Message struct {
	Text string `json:"text"`
}

// Result is one finding.
type Result struct {
	RuleID     string         `json:"ruleId"`
	Level      string         `json:"level"`
	Message    Message        `json:"message"`
	Locations  []Location     `json:"locations,omitempty"`
	Properties map[string]any `json:"properties,omitempty"`
}

// Location is a physical file/region reference.
type Location struct {
	PhysicalLocation PhysicalLocation `json:"physicalLocation"`
}

// PhysicalLocation pairs an artifact with a region.
type PhysicalLocation struct {
	ArtifactLocation ArtifactLocation `json:"artifactLocation"`
	Region           *Region          `json:"region,omitempty"`
}

// ArtifactLocation is a (repo-relative) file URI.
type ArtifactLocation struct {
	URI string `json:"uri"`
}

// Region is a start line (1-based).
type Region struct {
	StartLine int `json:"startLine"`
}

// Builder accumulates one run's findings.
type Builder struct {
	driver  Driver
	rules   map[string]string // id → description
	results []Result
}

// NewBuilder starts a log for the named tool.
func NewBuilder(toolName, informationURI string) *Builder {
	return &Builder{
		driver: Driver{Name: toolName, InformationURI: informationURI},
		rules:  make(map[string]string),
	}
}

// Rule registers (or updates) a rule description for a diagnostic code.
// Codes referenced by Add without a registered rule still appear in the
// rule table, with an empty description.
func (b *Builder) Rule(id, description string) {
	b.rules[id] = description
}

// Add records one finding. file may be empty (tool-level finding); line
// zero omits the region. props ride in the result's properties bag (nil
// for none).
func (b *Builder) Add(ruleID, level, message, file string, line int, props map[string]any) {
	if _, ok := b.rules[ruleID]; !ok {
		b.rules[ruleID] = ""
	}
	r := Result{
		RuleID:     ruleID,
		Level:      level,
		Message:    Message{Text: message},
		Properties: props,
	}
	if file != "" {
		pl := PhysicalLocation{ArtifactLocation: ArtifactLocation{URI: file}}
		if line > 0 {
			pl.Region = &Region{StartLine: line}
		}
		r.Locations = []Location{{PhysicalLocation: pl}}
	}
	b.results = append(b.results, r)
}

// Log assembles the document: rules sorted by ID, results in insertion
// order, results never null (code-scanning consumers reject null).
func (b *Builder) Log() *Log {
	ids := make([]string, 0, len(b.rules))
	for id := range b.rules {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	drv := b.driver
	for _, id := range ids {
		rule := Rule{ID: id}
		if desc := b.rules[id]; desc != "" {
			rule.ShortDescription = &Message{Text: desc}
		}
		drv.Rules = append(drv.Rules, rule)
	}
	results := b.results
	if results == nil {
		results = []Result{}
	}
	return &Log{
		Schema:  SchemaURI,
		Version: Version,
		Runs:    []Run{{Tool: Tool{Driver: drv}, Results: results}},
	}
}

// Write marshals the log as indented JSON.
func (b *Builder) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(b.Log())
}

package codegen

import (
	"fmt"
	"go/format"
	"strings"
)

// writer accumulates generated source with indentation helpers.
type writer struct {
	b      strings.Builder
	indent int
}

func (w *writer) in()  { w.indent++ }
func (w *writer) out() { w.indent-- }

// p writes one line at the current indentation.
func (w *writer) p(format string, args ...any) {
	for i := 0; i < w.indent; i++ {
		w.b.WriteByte('\t')
	}
	fmt.Fprintf(&w.b, format, args...)
	w.b.WriteByte('\n')
}

// nl writes a blank line.
func (w *writer) nl() { w.b.WriteByte('\n') }

// Fragment is one template-predicate pair at the interface level: the
// template is included in the generated stub iff the predicate holds for
// the specification's IR.
type Fragment struct {
	// Name identifies the fragment in the registry.
	Name string
	// When is the predicate.
	When func(ir *IR) bool
	// Emit is the template body.
	Emit func(ir *IR, w *writer)
}

// FnFragment is one template-predicate pair at the per-function level,
// evaluated once for every interface function.
type FnFragment struct {
	Name string
	When func(ir *IR, fn *FnIR) bool
	Emit func(ir *IR, fn *FnIR, w *writer)
}

// always is the trivially-true interface-level predicate.
func always(*IR) bool { return true }

// GenerateClient emits the client-side stub source for a specification.
func GenerateClient(ir *IR) (string, error) {
	w := &writer{}
	for _, fr := range clientFragments() {
		if fr.When(ir) {
			fr.Emit(ir, w)
		}
	}
	for _, fn := range ir.Funcs {
		emitMethod(ir, fn, w)
	}
	for _, fr := range clientTailFragments() {
		if fr.When(ir) {
			fr.Emit(ir, w)
		}
	}
	return gofmtSource(w.b.String())
}

// GenerateServer emits the server-side stub source for a specification.
func GenerateServer(ir *IR) (string, error) {
	w := &writer{}
	for _, fr := range serverFragments() {
		if fr.When(ir) {
			fr.Emit(ir, w)
		}
	}
	return gofmtSource(w.b.String())
}

// Generate emits all the stub files for one interface: the back end is
// "executed twice with two different sets of template inputs, once to
// generate the client stub, and one to generate the server" (§IV-B).
func Generate(ir *IR) (map[string]string, error) {
	client, err := GenerateClient(ir)
	if err != nil {
		return nil, fmt.Errorf("codegen: client stub for %s: %w", ir.Spec.Service, err)
	}
	server, err := GenerateServer(ir)
	if err != nil {
		return nil, fmt.Errorf("codegen: server stub for %s: %w", ir.Spec.Service, err)
	}
	return map[string]string{
		"client_stub.go": client,
		"server_stub.go": server,
	}, nil
}

func gofmtSource(src string) (string, error) {
	out, err := format.Source([]byte(src))
	if err != nil {
		return src, fmt.Errorf("generated code does not parse: %w", err)
	}
	return string(out), nil
}

// emitMethod assembles one interface method from the per-function fragment
// pipeline.
func emitMethod(ir *IR, fn *FnIR, w *writer) {
	for _, fr := range fnFragments() {
		if fr.When(ir, fn) {
			fr.Emit(ir, fn, w)
		}
	}
}

// keyExpr renders the descriptor-key expression from a function's argument
// identifiers.
func keyExpr(fn *FnIR) string {
	id := lowerCamel(fn.F.Params[fn.DescIdx].Name)
	if fn.NSIdx >= 0 {
		return fmt.Sprintf("genrt.Key{NS: %s, ID: %s}", lowerCamel(fn.F.Params[fn.NSIdx].Name), id)
	}
	return fmt.Sprintf("genrt.Key{ID: %s}", id)
}

// serverArgExpr renders one invocation argument with stub-side translation.
func serverArgExpr(fn *FnIR, i int) string {
	name := lowerCamel(fn.F.Params[i].Name)
	switch {
	case i == fn.DescIdx && !fn.IsCreate:
		return "arg_" + name
	case i == fn.ParentIdx && fn.IsCreate:
		return "arg_" + name
	default:
		return name
	}
}

// invokeArgs renders the full translated argument list for a method.
func invokeArgs(fn *FnIR) string {
	var parts []string
	for i := range fn.F.Params {
		parts = append(parts, serverArgExpr(fn, i))
	}
	return strings.Join(parts, ", ")
}

// walkArgExpr renders one recovery-walk argument sourced from tracked
// descriptor data.
func walkArgExpr(ir *IR, fn *FnIR, i int) string {
	p := fn.F.Params[i]
	switch {
	case i == fn.DescIdx:
		if fn.IsCreate {
			return "d.Key.ID"
		}
		return "d.ServerID"
	case i == fn.NSIdx:
		return "d.Key.NS"
	case i == fn.ParentIdx:
		return "s.walkParentID(d)"
	case i == fn.ParentNSIdx:
		return "s.walkParentNS(d)"
	default:
		field := ir.FieldFor(p.Name)
		for _, f := range ir.TrackedFields() {
			if f.Go == field {
				return "d." + field
			}
		}
		return "0 /* untracked */"
	}
}

func walkArgs(ir *IR, fn *FnIR) string {
	var parts []string
	for i := range fn.F.Params {
		parts = append(parts, walkArgExpr(ir, fn, i))
	}
	return strings.Join(parts, ", ")
}

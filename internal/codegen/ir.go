// Package codegen is the SuperGlue compiler back end: a network of
// template-predicate pairs that turns the intermediate representation of an
// interface specification (core.Spec + its compiled state machine) into
// client- and server-side stub source code, exactly as §IV-B describes.
// Templates are only included in the generated code when their predicate
// holds for the specification, so the emitted stub contains precisely the
// recovery mechanisms the descriptor-resource model calls for.
//
// The paper's compiler emits C; this one emits Go against the same runtime
// split: generated code plus a small support library (internal/gen/genrt),
// the analogue of the C³ stub macros.
package codegen

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"superglue/internal/core"
)

// IR is the compiler's intermediate representation for one interface: the
// validated specification, its explicit state machine with precomputed
// recovery walks, and naming helpers for emission.
type IR struct {
	Spec *core.Spec
	SM   *core.StateMachine
	// Funcs are the per-function IRs, in declaration order.
	Funcs []*FnIR
	// PureStates are the non-s0 shared states, sorted (walk-tail cases).
	PureStates []string
}

// FnIR is the per-function slice of the IR.
type FnIR struct {
	F *core.FuncSpec
	// Method is the Go method name (evt_split → EvtSplit).
	Method string
	// Kind flags, precomputed from the spec.
	IsCreate    bool
	IsTerminal  bool
	IsBlocking  bool
	IsWakeup    bool
	IsUpdate    bool
	IsReset     bool
	IsRestore   bool
	IsHold      bool
	IsRelease   bool
	IsPure      bool
	DescIdx     int
	NSIdx       int
	ParentIdx   int
	ParentNSIdx int
}

// NewIR builds the IR for a validated specification.
func NewIR(spec *core.Spec) (*IR, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sm, err := core.NewStateMachine(spec)
	if err != nil {
		return nil, err
	}
	ir := &IR{Spec: spec, SM: sm}
	for _, f := range spec.Funcs {
		_, isHold := spec.HoldFn(f.Name)
		_, isRelease := spec.ReleaseFn(f.Name)
		ir.Funcs = append(ir.Funcs, &FnIR{
			F:           f,
			Method:      Camel(f.Name),
			IsCreate:    spec.IsCreation(f.Name),
			IsTerminal:  spec.IsTerminal(f.Name),
			IsBlocking:  spec.IsBlocking(f.Name),
			IsWakeup:    spec.IsWakeup(f.Name),
			IsUpdate:    spec.IsUpdate(f.Name),
			IsReset:     spec.IsReset(f.Name),
			IsRestore:   spec.IsRestore(f.Name),
			IsHold:      isHold,
			IsRelease:   isRelease,
			IsPure:      spec.IsPure(f.Name),
			DescIdx:     f.DescIdx(),
			NSIdx:       f.NSIdx(),
			ParentIdx:   f.ParentIdx(),
			ParentNSIdx: f.ParentNSIdx(),
		})
	}
	for _, st := range sm.States() {
		if st == core.StateInitial || st == core.StateClosed || st == core.StateFaulty {
			continue
		}
		if spec.IsPure(st) {
			ir.PureStates = append(ir.PureStates, st)
		}
	}
	sort.Strings(ir.PureStates)
	return ir, nil
}

// Global-info predicates used across fragments.

// HasParent reports P_dr ≠ Solo.
func (ir *IR) HasParent() bool { return ir.Spec.DescHasParent != core.ParentSolo }

// IsXCParent reports P_dr = XCParent.
func (ir *IR) IsXCParent() bool { return ir.Spec.DescHasParent == core.ParentXC }

// IsGlobal reports G_dr.
func (ir *IR) IsGlobal() bool { return ir.Spec.DescIsGlobal }

// HasHolds reports whether any hold pairs are declared.
func (ir *IR) HasHolds() bool { return len(ir.Spec.Holds) > 0 }

// HasRestore reports whether any restore functions are declared.
func (ir *IR) HasRestore() bool { return len(ir.Spec.Restore) > 0 }

// HasNS reports whether any function carries a desc_ns parameter.
func (ir *IR) HasNS() bool {
	for _, f := range ir.Funcs {
		if f.NSIdx >= 0 {
			return true
		}
	}
	return false
}

// CloseChildren reports C_dr.
func (ir *IR) CloseChildren() bool { return ir.Spec.DescCloseChildren }

// Package returns the generated package name (gen + service).
func (ir *IR) Package() string {
	return "gen" + strings.Map(func(r rune) rune {
		if r == '_' || r == '-' {
			return -1
		}
		return r
	}, ir.Spec.Service)
}

// TrackedFields returns the descriptor-struct fields derived from tracked
// creation and data parameters, ordered and deduplicated by name.
func (ir *IR) TrackedFields() []Field {
	seen := make(map[string]bool)
	var out []Field
	for _, fn := range ir.Funcs {
		for _, p := range fn.F.Params {
			track := p.Role == core.RoleDescData || (fn.IsCreate && p.Role == core.RolePlain) ||
				p.Role == core.RoleParentDesc || p.Role == core.RoleParentNS
			if !track {
				continue
			}
			name := Camel(p.Name)
			if seen[name] {
				continue
			}
			seen[name] = true
			out = append(out, Field{Go: name, Param: p.Name, CType: p.CType})
		}
	}
	return out
}

// Field is one tracked descriptor-struct field.
type Field struct {
	Go    string // Go field name
	Param string // IDL parameter name
	CType string // declared C type (doc only)
}

// FieldFor returns the Go field name tracking an IDL parameter.
func (ir *IR) FieldFor(param string) string { return Camel(param) }

// CreationFns returns the creation functions' IRs.
func (ir *IR) CreationFns() []*FnIR {
	var out []*FnIR
	for _, f := range ir.Funcs {
		if f.IsCreate {
			out = append(out, f)
		}
	}
	return out
}

// Camel converts an IDL identifier to an exported Go identifier
// (evt_split → EvtSplit).
func Camel(s string) string {
	parts := strings.Split(s, "_")
	var b strings.Builder
	for _, p := range parts {
		if p == "" {
			continue
		}
		b.WriteString(strings.ToUpper(p[:1]))
		b.WriteString(p[1:])
	}
	return b.String()
}

// lowerCamel converts an IDL identifier to an unexported Go identifier.
// IDL parameter names are C-flavored and may collide with Go's
// predeclared identifiers or keywords (fs_read takes a `long len`);
// those are renamed with an Arg suffix so generated stubs never shadow
// a builtin (enforced by the shadowbuiltin analyzer in `make lint`).
func lowerCamel(s string) string {
	c := Camel(s)
	if c == "" {
		return c
	}
	n := strings.ToLower(c[:1]) + c[1:]
	if token.IsKeyword(n) || types.Universe.Lookup(n) != nil {
		return n + "Arg"
	}
	return n
}

// ParamList renders a method's Go parameter list (all word-typed, matching
// register-based invocations).
func (fn *FnIR) ParamList() string {
	var parts []string
	for _, p := range fn.F.Params {
		parts = append(parts, fmt.Sprintf("%s kernel.Word", lowerCamel(p.Name)))
	}
	return strings.Join(parts, ", ")
}

// ArgNames renders the method's argument identifiers in order.
func (fn *FnIR) ArgNames() []string {
	var parts []string
	for _, p := range fn.F.Params {
		parts = append(parts, lowerCamel(p.Name))
	}
	return parts
}

// IDLSignature renders the original IDL prototype (doc comments).
func (fn *FnIR) IDLSignature() string {
	var parts []string
	for _, p := range fn.F.Params {
		role := ""
		switch p.Role {
		case core.RoleDesc:
			role = "desc"
		case core.RoleDescData:
			role = "desc_data"
		case core.RoleParentDesc:
			role = "parent_desc"
		case core.RoleDescNS:
			role = "desc_ns"
		case core.RoleParentNS:
			role = "parent_ns"
		}
		decl := fmt.Sprintf("%s %s", p.CType, p.Name)
		if role != "" {
			decl = fmt.Sprintf("%s(%s)", role, decl)
		}
		parts = append(parts, decl)
	}
	ret := fn.F.RetCType
	if ret == "" {
		ret = "void"
	}
	return fmt.Sprintf("%s %s(%s)", ret, fn.F.Name, strings.Join(parts, ", "))
}

package codegen

import (
	"strings"
	"testing"

	"superglue/internal/idl"
	"superglue/internal/services/event"
	"superglue/internal/services/lock"
	"superglue/internal/services/mm"
	"superglue/internal/services/ramfs"
	"superglue/internal/services/sched"
	"superglue/internal/services/timer"
)

// serviceIRs compiles the IR of every system service.
func serviceIRs(t *testing.T) map[string]*IR {
	t.Helper()
	out := make(map[string]*IR)
	for name, src := range map[string]string{
		"lock":  lock.IDLSource(),
		"event": event.IDLSource(),
		"sched": sched.IDLSource(),
		"timer": timer.IDLSource(),
		"mm":    mm.IDLSource(),
		"ramfs": ramfs.IDLSource(),
	} {
		spec, err := idl.Parse(name, src)
		if err != nil {
			t.Fatalf("Parse(%s): %v", name, err)
		}
		ir, err := NewIR(spec)
		if err != nil {
			t.Fatalf("NewIR(%s): %v", name, err)
		}
		out[name] = ir
	}
	return out
}

// TestRegistryHas72Pairs pins the size of the template-predicate network to
// the paper's reported 72 (§IV-B).
func TestRegistryHas72Pairs(t *testing.T) {
	names := Registry()
	if len(names) != 72 {
		t.Fatalf("registry has %d template-predicate pairs; want 72:\n%s",
			len(names), strings.Join(names, "\n"))
	}
	seen := make(map[string]bool)
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate fragment name %q", n)
		}
		seen[n] = true
	}
}

// TestGenerateAllServicesParses generates both stubs for every service; the
// emitter runs go/format on the output, so success implies parseable code.
func TestGenerateAllServicesParses(t *testing.T) {
	for name, ir := range serviceIRs(t) {
		files, err := Generate(ir)
		if err != nil {
			t.Fatalf("Generate(%s): %v", name, err)
		}
		for fname, content := range files {
			if !strings.Contains(content, "DO NOT EDIT") {
				t.Errorf("%s/%s missing generated-code marker", name, fname)
			}
			if len(content) < 200 {
				t.Errorf("%s/%s suspiciously small (%d bytes)", name, fname, len(content))
			}
		}
	}
}

// TestPredicatesSelectMechanisms checks that generated code contains exactly
// the recovery machinery the model calls for.
func TestPredicatesSelectMechanisms(t *testing.T) {
	irs := serviceIRs(t)

	gen := func(name string) string {
		t.Helper()
		src, err := GenerateClient(irs[name])
		if err != nil {
			t.Fatalf("GenerateClient(%s): %v", name, err)
		}
		return src
	}

	lockSrc := gen("lock")
	if !strings.Contains(lockSrc, "holdRec") {
		t.Error("lock stub missing hold tracking (sm_hold)")
	}
	if strings.Contains(lockSrc, "internal/storage") {
		t.Error("lock stub imports storage despite not being global")
	}
	if strings.Contains(lockSrc, "recoverSubtree") {
		t.Error("lock stub has subtree recovery without desc_close_children")
	}

	evtSrc := gen("event")
	if !strings.Contains(evtSrc, "storage.FnRecordCreator") {
		t.Error("event stub missing creator registration (G0)")
	}
	if !strings.Contains(evtSrc, "storage.FnRemap") {
		t.Error("event stub missing remap (G0)")
	}
	if !strings.Contains(evtSrc, "walkParentID") {
		t.Error("event stub missing parent walk helper (D1)")
	}
	if strings.Contains(evtSrc, "holdRec") {
		t.Error("event stub has hold tracking without sm_hold")
	}

	mmSrc := gen("mm")
	if !strings.Contains(mmSrc, "recoverSubtree") {
		t.Error("mm stub missing subtree recovery (D0)")
	}
	if !strings.Contains(mmSrc, "walkParentNS") {
		t.Error("mm stub missing parent namespace helper (XCParent)")
	}

	fsSrc := gen("ramfs")
	if !strings.Contains(fsSrc, `"fs_lseek", d.ServerID, d.Offset`) {
		t.Error("ramfs stub missing the open-and-lseek restore replay")
	}
	if !strings.Contains(fsSrc, "d.Offset += ret") {
		t.Error("ramfs stub missing offset accumulation (desc_data_retval_acc)")
	}

	evtSrv, err := GenerateServer(irs["event"])
	if err != nil {
		t.Fatalf("GenerateServer(event): %v", err)
	}
	if !strings.Contains(evtSrv, "LookupCreator") || !strings.Contains(evtSrv, "core.FnRecreate") {
		t.Error("event server stub missing the EINVAL→G0 upcall path")
	}
	lockSrv, err := GenerateServer(irs["lock"])
	if err != nil {
		t.Fatalf("GenerateServer(lock): %v", err)
	}
	if strings.Contains(lockSrv, "LookupCreator") {
		t.Error("lock server stub has G0 logic despite not being global")
	}
}

func TestCamel(t *testing.T) {
	for in, want := range map[string]string{
		"evt_split":           "EvtSplit",
		"mman_get_page":       "MmanGetPage",
		"fs_open":             "FsOpen",
		"lock":                "Lock",
		"sched_blk":           "SchedBlk",
		"desc__double":        "DescDouble",
		"timer_periodic_wait": "TimerPeriodicWait",
	} {
		if got := Camel(in); got != want {
			t.Errorf("Camel(%q) = %q; want %q", in, got, want)
		}
	}
}

func TestIRQueries(t *testing.T) {
	irs := serviceIRs(t)
	if !irs["event"].IsGlobal() || irs["lock"].IsGlobal() {
		t.Error("IsGlobal classification wrong")
	}
	if !irs["mm"].IsXCParent() || irs["event"].IsXCParent() {
		t.Error("IsXCParent classification wrong")
	}
	if !irs["mm"].CloseChildren() || irs["event"].CloseChildren() {
		t.Error("CloseChildren classification wrong")
	}
	if !irs["lock"].HasHolds() || irs["timer"].HasHolds() {
		t.Error("HasHolds classification wrong")
	}
	if !irs["ramfs"].HasRestore() || irs["lock"].HasRestore() {
		t.Error("HasRestore classification wrong")
	}
	if !irs["mm"].HasNS() || irs["event"].HasNS() {
		t.Error("HasNS classification wrong")
	}
	if got := irs["event"].Package(); got != "genevent" {
		t.Errorf("Package = %q; want genevent", got)
	}
	fields := irs["ramfs"].TrackedFields()
	names := make(map[string]bool)
	for _, f := range fields {
		names[f.Go] = true
	}
	for _, want := range []string{"Compid", "Pathbuf", "Pathlen", "Offset"} {
		if !names[want] {
			t.Errorf("ramfs tracked fields missing %s; got %v", want, fields)
		}
	}
}

func TestIDLSignatureRoundTrip(t *testing.T) {
	irs := serviceIRs(t)
	fn := irs["event"].fnIR("evt_split")
	sig := fn.IDLSignature()
	for _, want := range []string{"desc_data(componentid_t compid)", "parent_desc(long parent_evtid)"} {
		if !strings.Contains(sig, want) {
			t.Errorf("IDLSignature = %q; missing %q", sig, want)
		}
	}
}

func TestNewIRRejectsInvalidSpec(t *testing.T) {
	spec, err := idl.ParseLax("bad", "int f(desc(long id));")
	if err != nil {
		t.Fatalf("ParseLax: %v", err)
	}
	if _, err := NewIR(spec); err == nil {
		t.Fatal("NewIR accepted an invalid spec")
	}
}

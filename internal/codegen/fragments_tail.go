package codegen

// ---------------------------------------------------------------------------
// Client tail fragments: recovery engine, walk replay, termination
// bookkeeping, helpers, and the upcall surface.
// ---------------------------------------------------------------------------

func clientTailFragments() []Fragment {
	return []Fragment{
		{Name: "recover-head", When: always, Emit: func(ir *IR, w *writer) {
			w.p("// recover restores one descriptor after a µ-reboot: mechanism R0 at the")
			w.p("// calling thread's priority (T1).")
			w.p("func (s *ClientStub) recover(t *kernel.Thread, d *Desc) error {")
			w.in()
			w.p("cur := genrt.EpochOf(s.k, s.server)")
			w.p("if d.Closed || d.Epoch == cur {")
			w.in()
			w.p("return nil")
			w.out()
			w.p("}")
			w.p("s.Metrics.Recoveries++")
			w.p("// Non-preemptible walk: no other thread may observe a")
			w.p("// half-recovered descriptor.")
			w.p("s.k.PushNoPreempt(t)")
			w.p("defer s.k.PopNoPreempt(t)")
			w.p("if d.Epoch == genrt.EpochOf(s.k, s.server) {")
			w.in()
			w.p("return nil")
			w.out()
			w.p("}")
			w.p("sp := genrt.BeginSpan(s.k)")
			w.out()
		}},
		{Name: "recover-parent", When: func(ir *IR) bool { return ir.HasParent() }, Emit: func(ir *IR, w *writer) {
			w.in()
			w.p("// D1: parents recovered root-first.")
			w.p("if d.Parent != nil && !d.Parent.Closed {")
			w.in()
			w.p("psp := genrt.BeginSpan(s.k)")
			w.p("if err := s.recover(t, d.Parent); err != nil {")
			w.in()
			w.p("return err")
			w.out()
			w.p("}")
			w.p("psp.EndIfWork(genrt.MechD1, s.server, t, d.CreatedBy, genrt.EpochOf(s.k, s.server))")
			w.out()
			w.p("}")
			w.out()
		}},
		{Name: "recover-oldsid", When: func(ir *IR) bool { return ir.IsGlobal() }, Emit: func(ir *IR, w *writer) {
			w.in()
			w.p("oldSID := d.ServerID")
			w.out()
		}},
		{Name: "recover-walk-loop", When: always, Emit: func(ir *IR, w *writer) {
			w.in()
			w.p("for attempt := 0; ; attempt++ {")
			w.in()
			w.p("err := s.replayWalk(t, d)")
			w.p("if err == nil {")
			w.in()
			w.p("break")
			w.out()
			w.p("}")
			w.p("f, isFault := kernel.AsFault(err)")
			w.p("if !isFault || f.Comp != s.server || attempt >= genrt.MaxRedo {")
			w.in()
			w.p("return err")
			w.out()
			w.p("}")
			w.p("// A second fault mid-walk: µ-reboot again and restart the walk.")
			w.p("if uerr := genrt.FaultUpdate(t, s.k, s.server, f); uerr != nil {")
			w.in()
			w.p("return uerr")
			w.out()
			w.p("}")
			w.out()
			w.p("}")
			w.out()
		}},
		{Name: "recover-holds", When: func(ir *IR) bool { return ir.HasHolds() }, Emit: func(ir *IR, w *writer) {
			w.in()
			w.p("// Re-establish outstanding holds on behalf of their holders before")
			w.p("// any contender can slip in (the hold call carries the holder's")
			w.p("// thread identity).")
			w.p("tids := make([]kernel.ThreadID, 0, len(d.Holders))")
			w.p("for tid := range d.Holders {")
			w.in()
			w.p("tids = append(tids, tid)")
			w.out()
			w.p("}")
			w.p("sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })")
			w.p("for _, tid := range tids {")
			w.in()
			w.p("rec := d.Holders[tid]")
			w.p("if rec.Fn == \"\" || rec.Epoch == cur {")
			w.in()
			w.p("continue")
			w.out()
			w.p("}")
			w.p("args := make([]kernel.Word, len(rec.Args))")
			w.p("copy(args, rec.Args)")
			w.p("switch rec.Fn {")
			for _, h := range ir.Spec.Holds {
				hf := ir.Spec.Func(h.Hold)
				w.p("case %q:", h.Hold)
				w.in()
				w.p("args[%d] = d.ServerID", hf.DescIdx())
				w.out()
			}
			w.p("}")
			w.p("if _, err := s.k.Invoke(t, s.server, rec.Fn, args...); err != nil {")
			w.in()
			w.p("return err")
			w.out()
			w.p("}")
			w.p("rec.Epoch = cur")
			w.p("d.Holders[tid] = rec")
			w.p("s.Metrics.WalkSteps++")
			w.out()
			w.p("}")
			w.out()
		}},
		{Name: "recover-remap", When: func(ir *IR) bool { return ir.IsGlobal() }, Emit: func(ir *IR, w *writer) {
			w.in()
			w.p("// G0: publish the ID translation so stale IDs held by other")
			w.p("// components resolve to the recreated descriptor.")
			w.p("if d.ServerID != oldSID {")
			w.in()
			w.p("if _, err := s.k.Invoke(t, s.host.System().StorageComp(), storage.FnRemap,")
			w.in()
			w.p("kernel.Word(s.class), oldSID, d.ServerID); err != nil {")
			w.p("return err")
			w.out()
			w.p("}")
			w.p("s.Metrics.StorageOps++")
			w.out()
			w.p("}")
			w.out()
		}},
		{Name: "recover-foot", When: always, Emit: func(ir *IR, w *writer) {
			w.in()
			w.p("d.Epoch = genrt.EpochOf(s.k, s.server)")
			w.p("// One completed walk files the R0 span plus its trigger (T1):")
			w.p("// the same measured cost classified under both mechanisms.")
			w.p("sp.End(genrt.MechR0, s.server, t, d.CreatedBy, d.Epoch)")
			w.p("sp.End(genrt.MechT1, s.server, t, d.CreatedBy, d.Epoch)")
			w.p("return nil")
			w.out()
			w.p("}")
			w.nl()
		}},
		{Name: "recover-subtree", When: func(ir *IR) bool { return ir.CloseChildren() }, Emit: func(ir *IR, w *writer) {
			w.p("// recoverSubtree rebuilds d and every descendant: the D0 prerequisite")
			w.p("// for recursive revocation.")
			w.p("func (s *ClientStub) recoverSubtree(t *kernel.Thread, d *Desc) error {")
			w.in()
			w.p("if err := s.recover(t, d); err != nil {")
			w.in()
			w.p("return err")
			w.out()
			w.p("}")
			w.p("for _, c := range d.Children {")
			w.in()
			w.p("if c.Closed {")
			w.in()
			w.p("continue")
			w.out()
			w.p("}")
			w.p("if err := s.recoverSubtree(t, c); err != nil {")
			w.in()
			w.p("return err")
			w.out()
			w.p("}")
			w.out()
			w.p("}")
			w.p("return nil")
			w.out()
			w.p("}")
			w.nl()
		}},
		{Name: "replay-walk-head", When: always, Emit: func(ir *IR, w *writer) {
			w.p("// replayWalk replays the precomputed shortest recovery walk for d's")
			w.p("// expected state: creation, pure transitions, then restore functions.")
			w.p("func (s *ClientStub) replayWalk(t *kernel.Thread, d *Desc) error {")
			w.in()
			w.p("switch d.CreatedBy {")
			for _, fn := range ir.CreationFns() {
				w.p("case %q:", fn.F.Name)
				w.in()
				w.p("ret, err := s.k.Invoke(t, s.server, %q, %s)", fn.F.Name, walkArgs(ir, fn))
				w.p("if err != nil {")
				w.in()
				w.p("return err")
				w.out()
				w.p("}")
				w.p("s.Metrics.WalkSteps++")
				if fn.F.RetDescID {
					w.p("d.ServerID = ret")
				} else {
					w.p("_ = ret")
				}
				w.out()
			}
			w.p("default:")
			w.in()
			w.p(`return fmt.Errorf("%s: unknown creation function %%q", d.CreatedBy)`, ir.Package())
			w.out()
			w.p("}")
			w.out()
		}},
		{Name: "replay-state-tails", When: func(ir *IR) bool { return len(ir.PureStates) > 0 }, Emit: func(ir *IR, w *writer) {
			w.in()
			w.p("switch d.State {")
			for _, st := range ir.PureStates {
				walk, _ := ir.SM.Walk(st)
				w.p("case %q:", st)
				w.in()
				for _, step := range walk {
					sf := ir.Spec.Func(step)
					fnIR := ir.fnIR(step)
					_ = sf
					w.p("if _, err := s.k.Invoke(t, s.server, %q, %s); err != nil {", step, walkArgs(ir, fnIR))
					w.in()
					w.p("return err")
					w.out()
					w.p("}")
					w.p("s.Metrics.WalkSteps++")
					if fnIR.IsRestore {
						w.p("genrt.TraceMech(s.k, genrt.MechG1, s.server, t, %q)", step)
					}
				}
				w.out()
			}
			w.p("}")
			w.out()
		}},
		{Name: "replay-restore", When: func(ir *IR) bool { return ir.HasRestore() }, Emit: func(ir *IR, w *writer) {
			w.in()
			w.p("// sm_restore: push tracked descriptor data back into the server")
			w.p(`// (the "open and lseek" pattern of §II-C).`)
			for _, fn := range ir.Spec.Restore {
				fnIR := ir.fnIR(fn)
				w.p("if _, err := s.k.Invoke(t, s.server, %q, %s); err != nil {", fn, walkArgs(ir, fnIR))
				w.in()
				w.p("return err")
				w.out()
				w.p("}")
				w.p("s.Metrics.WalkSteps++")
				w.p("// G1: a restore step pushes tracked resource data back in.")
				w.p("genrt.TraceMech(s.k, genrt.MechG1, s.server, t, %q)", fn)
			}
			w.out()
		}},
		{Name: "replay-walk-foot", When: always, Emit: func(ir *IR, w *writer) {
			w.in()
			w.p("return nil")
			w.out()
			w.p("}")
			w.nl()
		}},
		{Name: "walk-parent-helpers", When: func(ir *IR) bool { return ir.HasParent() }, Emit: func(ir *IR, w *writer) {
			raw := "0"
			rawNS := "0"
			hasNS := false
			for _, fn := range ir.CreationFns() {
				if fn.ParentIdx >= 0 && raw == "0" {
					raw = "d." + ir.FieldFor(fn.F.Params[fn.ParentIdx].Name)
				}
				if fn.ParentNSIdx >= 0 {
					hasNS = true
					rawNS = "d." + ir.FieldFor(fn.F.Params[fn.ParentNSIdx].Name)
				}
			}
			w.p("// walkParentID resolves the parent argument for a walk step.")
			w.p("func (s *ClientStub) walkParentID(d *Desc) kernel.Word {")
			w.in()
			w.p("if d.Parent != nil {")
			w.in()
			w.p("return d.Parent.ServerID")
			w.out()
			w.p("}")
			w.p("return %s", raw)
			w.out()
			w.p("}")
			w.nl()
			if hasNS {
				w.p("// walkParentNS resolves the parent-namespace argument for a walk step.")
				w.p("func (s *ClientStub) walkParentNS(d *Desc) kernel.Word {")
				w.in()
				w.p("if d.Parent != nil {")
				w.in()
				w.p("return d.Parent.Key.NS")
				w.out()
				w.p("}")
				w.p("return %s", rawNS)
				w.out()
				w.p("}")
				w.nl()
			}
		}},
		{Name: "close-desc-head", When: always, Emit: func(ir *IR, w *writer) {
			w.p("// closeDesc applies the termination bookkeeping derived from C_dr/Y_dr.")
			w.p("func (s *ClientStub) closeDesc(t *kernel.Thread, d *Desc) {")
			w.in()
			w.p("d.State = core.StateClosed")
			w.out()
		}},
		{Name: "close-desc-children", When: func(ir *IR) bool { return ir.CloseChildren() }, Emit: func(ir *IR, w *writer) {
			w.in()
			w.p("// C_dr: recursive revocation destroyed the children server-side;")
			w.p("// drop their tracking data too.")
			w.p("for len(d.Children) > 0 {")
			w.in()
			w.p("c := d.Children[len(d.Children)-1]")
			w.p("d.Children = d.Children[:len(d.Children)-1]")
			w.p("c.Parent = nil")
			w.p("s.closeDesc(t, c)")
			w.out()
			w.p("}")
			w.out()
		}},
		{Name: "close-desc-detach", When: func(ir *IR) bool { return ir.HasParent() }, Emit: func(ir *IR, w *writer) {
			w.in()
			w.p("if d.Parent != nil {")
			w.in()
			w.p("for i, c := range d.Parent.Children {")
			w.in()
			w.p("if c == d {")
			w.in()
			w.p("d.Parent.Children = append(d.Parent.Children[:i], d.Parent.Children[i+1:]...)")
			w.p("break")
			w.out()
			w.p("}")
			w.out()
			w.p("}")
			w.p("d.Parent = nil")
			w.out()
			w.p("}")
			w.out()
		}},
		{Name: "close-desc-global", When: func(ir *IR) bool { return ir.IsGlobal() }, Emit: func(ir *IR, w *writer) {
			w.in()
			w.p("// Forget the creator record so recovery cannot resurrect it.")
			w.p("if _, err := s.k.Invoke(t, s.host.System().StorageComp(), storage.FnRemoveCreator,")
			w.in()
			w.p("kernel.Word(s.class), d.ServerID); err == nil {")
			w.p("s.Metrics.StorageOps++")
			w.out()
			w.p("}")
			w.out()
		}},
		{Name: "close-desc-dispose", When: always, Emit: func(ir *IR, w *writer) {
			w.in()
			if ir.CloseChildren() || ir.Spec.DescCloseRemove || !ir.HasParent() {
				w.p("delete(s.descs, d.Key) // Y_dr / C_dr: tracking data removed")
			} else {
				w.p("d.Closed = true // ¬Y_dr: meta-data retained for children")
			}
			w.out()
		}},
		{Name: "close-desc-foot", When: always, Emit: func(ir *IR, w *writer) {
			w.p("}")
			w.nl()
		}},
		{Name: "upcall-recover", When: always, Emit: func(ir *IR, w *writer) {
			w.p("// RecoverByKey implements genrt.Recoverer (mechanisms D1/U0).")
			w.p("func (s *ClientStub) RecoverByKey(t *kernel.Thread, ns, id kernel.Word) (kernel.Word, error) {")
			w.in()
			w.p("d := s.descs[genrt.Key{NS: ns, ID: id}]")
			w.p("if d == nil {")
			w.in()
			w.p(`return 0, fmt.Errorf("%s: unknown descriptor %%d@%%d", id, ns)`, ir.Package())
			w.out()
			w.p("}")
			w.p("if err := s.recover(t, d); err != nil {")
			w.in()
			w.p("return 0, err")
			w.out()
			w.p("}")
			w.p("return d.ServerID, nil")
			w.out()
			w.p("}")
			w.nl()
		}},
		{Name: "upcall-recreate-global", When: func(ir *IR) bool { return ir.IsGlobal() }, Emit: func(ir *IR, w *writer) {
			w.p("// RecreateByServerID implements genrt.Recoverer: the server-side stub")
			w.p("// found a stale global ID and upcalled us, the recorded creator (G0).")
			w.p("func (s *ClientStub) RecreateByServerID(t *kernel.Thread, stale kernel.Word) (kernel.Word, error) {")
			w.in()
			emitRecreateScan(w, ir.Spec.RescHasData)
			w.p("// Possibly already remapped by our own recovery.")
			w.p("if now := s.host.System().Store().Resolve(s.class, stale); now != stale {")
			w.in()
			w.p("return now, nil")
			w.out()
			w.p("}")
			w.p(`return 0, fmt.Errorf("%s: no descriptor with server id %%d", stale)`, ir.Package())
			w.out()
			w.p("}")
			w.nl()
		}},
		{Name: "upcall-recreate-local", When: func(ir *IR) bool { return !ir.IsGlobal() }, Emit: func(ir *IR, w *writer) {
			w.p("// RecreateByServerID implements genrt.Recoverer; descriptors of this")
			w.p("// interface are locally addressed, so no creator-based recreation")
			w.p("// applies.")
			w.p("func (s *ClientStub) RecreateByServerID(t *kernel.Thread, stale kernel.Word) (kernel.Word, error) {")
			w.in()
			emitRecreateScan(w, ir.Spec.RescHasData)
			w.p(`return 0, fmt.Errorf("%s: no descriptor with server id %%d", stale)`, ir.Package())
			w.out()
			w.p("}")
		}},
	}
}

// emitRecreateScan emits the deterministic stale-server-ID scan shared by
// both RecreateByServerID variants: candidates are collected and sorted by
// descriptor key so a duplicate server ID resolves to the same descriptor
// on every replay (a first-match return over the map would depend on Go's
// randomized iteration order). rescData (D_r) additionally files a G1
// count event: the recreated resource carried bulk data.
func emitRecreateScan(w *writer, rescData bool) {
	w.p("var keys []genrt.Key")
	w.p("for key, d := range s.descs {")
	w.in()
	w.p("if d.ServerID == stale && !d.Closed {")
	w.in()
	w.p("keys = append(keys, key)")
	w.out()
	w.p("}")
	w.out()
	w.p("}")
	w.p("sort.Slice(keys, func(i, j int) bool {")
	w.in()
	w.p("if keys[i].NS != keys[j].NS {")
	w.in()
	w.p("return keys[i].NS < keys[j].NS")
	w.out()
	w.p("}")
	w.p("return keys[i].ID < keys[j].ID")
	w.out()
	w.p("})")
	w.p("for _, key := range keys {")
	w.in()
	w.p("d := s.descs[key]")
	w.p("if err := s.recover(t, d); err != nil {")
	w.in()
	w.p("return 0, err")
	w.out()
	w.p("}")
	if rescData {
		w.p("// G1: the recreated resource carried bulk data (D_r).")
		w.p("genrt.TraceMech(s.k, genrt.MechG1, s.server, t, core.FnRecreate)")
	}
	w.p("return d.ServerID, nil")
	w.out()
	w.p("}")
}

// fnIR finds the FnIR for a function name.
func (ir *IR) fnIR(name string) *FnIR {
	for _, fn := range ir.Funcs {
		if fn.F.Name == name {
			return fn
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Server fragments: ID resolution and the EINVAL→G0 path.
// ---------------------------------------------------------------------------

func serverFragments() []Fragment {
	descFns := func(ir *IR) []*FnIR {
		var out []*FnIR
		for _, fn := range ir.Funcs {
			if fn.DescIdx >= 0 && !fn.IsCreate {
				out = append(out, fn)
			}
		}
		return out
	}
	return []Fragment{
		{Name: "header", When: always, Emit: func(ir *IR, w *writer) {
			w.p("// Code generated by sgc from the SuperGlue IDL for service %q. DO NOT EDIT.", ir.Spec.Service)
			w.nl()
			w.p("package %s", ir.Package())
			w.nl()
			w.p("import (")
			w.in()
			if ir.IsGlobal() {
				w.p(`"errors"`)
				w.nl()
			}
			w.p(`"superglue/internal/core"`)
			if ir.IsGlobal() {
				w.p(`"superglue/internal/gen/genrt"`)
			}
			w.p(`"superglue/internal/kernel"`)
			if ir.IsGlobal() {
				w.p(`"superglue/internal/storage"`)
			}
			w.out()
			w.p(")")
			w.nl()
		}},
		{Name: "struct", When: always, Emit: func(ir *IR, w *writer) {
			w.p("// ServerStub is the generated server-side stub for the %s component.", ir.Spec.Service)
			w.p("type ServerStub struct {")
			w.in()
			w.p("sys   *core.System")
			w.p("inner kernel.Service")
			w.p("self  kernel.ComponentID")
			if ir.IsGlobal() {
				w.p("class storage.Class")
			}
			w.out()
			w.p("}")
			w.nl()
			w.p("var _ kernel.Service = (*ServerStub)(nil)")
			w.nl()
		}},
		{Name: "constructor", When: always, Emit: func(ir *IR, w *writer) {
			w.p("// NewServerStub wraps a %s implementation with the generated stub.", ir.Spec.Service)
			w.p("func NewServerStub(sys *core.System, inner kernel.Service) *ServerStub {")
			w.in()
			w.p("return &ServerStub{sys: sys, inner: inner}")
			w.out()
			w.p("}")
			w.nl()
			w.p("// Name implements kernel.Service.")
			w.p("func (s *ServerStub) Name() string { return s.inner.Name() }")
			w.nl()
		}},
		{Name: "init", When: always, Emit: func(ir *IR, w *writer) {
			w.p("// Init implements kernel.Service.")
			w.p("func (s *ServerStub) Init(bc *kernel.BootContext) error {")
			w.in()
			w.p("s.self = bc.Self")
			if ir.IsGlobal() {
				w.p("if class, ok := s.sys.Class(bc.Self); ok {")
				w.in()
				w.p("s.class = class")
				w.out()
				w.p("}")
			}
			w.p("return s.inner.Init(bc)")
			w.out()
			w.p("}")
			w.nl()
		}},
		{Name: "desc-idx", When: func(ir *IR) bool { return ir.IsGlobal() }, Emit: func(ir *IR, w *writer) {
			w.p("// descIdx maps each interface function to its descriptor-argument index.")
			w.p("func descIdx(fn string) int {")
			w.in()
			w.p("switch fn {")
			for _, fn := range descFns(ir) {
				w.p("case %q:", fn.F.Name)
				w.in()
				w.p("return %d", fn.DescIdx)
				w.out()
			}
			w.p("default:")
			w.in()
			w.p("return -1")
			w.out()
			w.p("}")
			w.out()
			w.p("}")
			w.nl()
		}},
		{Name: "dispatch-head", When: always, Emit: func(ir *IR, w *writer) {
			w.p("// Dispatch implements kernel.Service.")
			w.p("func (s *ServerStub) Dispatch(t *kernel.Thread, fn string, args []kernel.Word) (kernel.Word, error) {")
			w.in()
		}},
		{Name: "dispatch-resolve-global", When: func(ir *IR) bool { return ir.IsGlobal() }, Emit: func(ir *IR, w *writer) {
			w.p("// Incoming global IDs may predate a µ-reboot; resolve them first.")
			w.p("if di := descIdx(fn); di >= 0 && di < len(args) {")
			w.in()
			w.p("args[di] = s.sys.Store().Resolve(s.class, args[di])")
			w.out()
			w.p("}")
		}},
		{Name: "dispatch-inner", When: always, Emit: func(ir *IR, w *writer) {
			w.p("ret, err := s.inner.Dispatch(t, fn, args)")
		}},
		{Name: "dispatch-einval-g0", When: func(ir *IR) bool { return ir.IsGlobal() }, Emit: func(ir *IR, w *writer) {
			w.p("if errors.Is(err, kernel.ErrInvalidDescriptor) {")
			w.in()
			w.p("// G0: query the storage component for the descriptor's creator,")
			w.p("// upcall it to rebuild the descriptor (U0), and replay.")
			w.p("if di := descIdx(fn); di >= 0 && di < len(args) {")
			w.in()
			w.p("if rec, ok := s.sys.Store().LookupCreator(s.class, args[di]); ok {")
			w.in()
			w.p("// The full G0 span: EINVAL detection → creator lookup →")
			w.p("// recreate upcall, measured before the replay below.")
			w.p("sp := genrt.BeginSpan(s.sys.Kernel())")
			w.p("newID, uerr := s.sys.Kernel().Upcall(t, rec.Creator, core.FnRecreate, kernel.Word(s.self), args[di])")
			w.p("if uerr == nil && newID > 0 {")
			w.in()
			w.p("sp.End(genrt.MechG0, s.self, t, fn, 0)")
			w.p("args[di] = newID")
			w.p("return s.inner.Dispatch(t, fn, args)")
			w.out()
			w.p("}")
			w.out()
			w.p("}")
			w.out()
			w.p("}")
			w.out()
			w.p("}")
		}},
		{Name: "dispatch-foot", When: always, Emit: func(ir *IR, w *writer) {
			w.p("return ret, err")
			w.out()
			w.p("}")
		}},
	}
}

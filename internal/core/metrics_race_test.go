package core_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/services/lock"
)

// TestMetricsSnapshotDuringCampaign stresses the atomic stub counters and
// the lock-free kernel read surface from monitor goroutines while a
// simulated thread runs a fault/recover workload — the monitoring pattern a
// C'MON-style observer would use. Run under -race, the interleavings are
// the assertion; the counter checks at the end are sanity only.
func TestMetricsSnapshotDuringCampaign(t *testing.T) {
	const iters = 1500

	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	lockComp, err := lock.Register(sys)
	if err != nil {
		t.Fatal(err)
	}
	app, err := sys.NewClient("app")
	if err != nil {
		t.Fatal(err)
	}
	locks, err := lock.NewClient(app, lockComp)
	if err != nil {
		t.Fatal(err)
	}
	kern := sys.Kernel()

	if _, err := kern.CreateThread(nil, "driver", 10, func(th *kernel.Thread) {
		id, err := locks.Alloc(th)
		if err != nil {
			t.Errorf("Alloc: %v", err)
			return
		}
		for i := 0; i < iters; i++ {
			if i%100 == 50 {
				if err := kern.FailComponent(lockComp); err != nil {
					t.Errorf("FailComponent: %v", err)
					return
				}
			}
			if err := locks.Take(th, id); err != nil {
				t.Errorf("iter %d: Take: %v", i, err)
				return
			}
			if err := locks.Release(th, id); err != nil {
				t.Errorf("iter %d: Release: %v", i, err)
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sink uint64
			for !stop.Load() {
				m := locks.Stub().Metrics()
				sink += m.Invocations + m.TrackOps + m.Redos + m.Recoveries
				if e, err := kern.Epoch(lockComp); err == nil {
					sink += e
				}
				if kern.Faulty(lockComp) {
					sink++
				}
				sink += kern.InvocationCount()
			}
			_ = sink
		}()
	}

	err = kern.Run()
	stop.Store(true)
	wg.Wait()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	m := locks.Stub().Metrics()
	// Alloc + iters×(Take+Release), plus the redos from the injected faults.
	if want := uint64(1 + 2*iters); m.Invocations < want {
		t.Errorf("Invocations = %d, want >= %d", m.Invocations, want)
	}
	if m.Redos == 0 || m.Recoveries == 0 {
		t.Errorf("Redos = %d, Recoveries = %d; want both > 0 after injected faults", m.Redos, m.Recoveries)
	}
}

package core

import (
	"fmt"
	"sort"
)

// State names. States are implicit in the IDL (§IV-A: "the state machines in
// the current language are implicit"); the compiler infers one state per
// pure transition function — the state a descriptor is in after that
// function was applied — plus the distinguished states below. Update
// functions leave the state unchanged, reset functions return to s0, and
// blocking/wakeup/hold functions act on per-thread state instead of the
// shared descriptor state.
const (
	// StateInitial is s0, the state of a freshly created descriptor.
	StateInitial = "s0"
	// StateClosed is the state after a terminal function; the descriptor no
	// longer exists.
	StateClosed = "closed"
	// StateFaulty is s_f. Every state has an implicit transition to it,
	// taken when the server fails.
	StateFaulty = "s_f"
)

// StateMachine is the explicit form SM_dr = (I_dr, S_dr, σ, s0, s_f) of a
// spec's implicit descriptor state machine, together with the precomputed
// shortest recovery walk from s0 to every reachable state (the paper's
// "precomputed, shortest path through the state machine").
//
// Recovery walks never include blocking or hold functions: a walk must not
// block the recovering thread, so a state only reachable through a blocking
// function is a specification error. Per-thread hold state is re-established
// separately, by the holding thread itself.
type StateMachine struct {
	spec *Spec
	// next is σ restricted to declared transitions: (state, fn) → state.
	next map[stateFn]string
	// walks maps each reachable shared state to the shortest pure-function
	// sequence that drives a descriptor from s0 to that state.
	walks map[string][]string
	// states is S_dr, sorted for deterministic iteration.
	states []string
}

type stateFn struct {
	state string
	fn    string
}

// stateAfter maps a function to the shared descriptor state after the
// function is applied. Update and per-thread functions return "" (state
// unchanged).
func (s *Spec) stateAfter(fn string) string {
	switch {
	case s.IsCreation(fn):
		return StateInitial
	case s.IsTerminal(fn):
		return StateClosed
	case s.IsReset(fn):
		return StateInitial
	case s.IsUpdate(fn), s.IsPerThread(fn):
		return ""
	default:
		return fn
	}
}

// fromState maps a transition's From function to the state the transition
// departs from. Per-thread functions depart from the state they were applied
// in; the Fig. 3 style of declaring transitions through blocking functions
// (e.g., sm_transition(evt_wait, evt_trigger)) therefore resolves to the
// state those functions leave the shared descriptor in.
func (s *Spec) fromState(fn string) string {
	st := s.stateAfter(fn)
	if st == "" {
		// Per-thread From: the shared state is whatever it was; anchor the
		// declared validity at s0, the state such descriptors occupy.
		return StateInitial
	}
	return st
}

// StateAfter maps a function to the shared descriptor state after the
// function is applied: s0 for creation and reset functions, closed for
// terminal functions, the function's own name for pure transitions, and ""
// for update and per-thread functions (state unchanged). Exported for
// analysis tooling (internal/analysis/speclint).
func (s *Spec) StateAfter(fn string) string { return s.stateAfter(fn) }

// TransitionFromState maps a transition's From function to the state the
// transition departs from, with per-thread functions anchored at s0 exactly
// as NewStateMachine compiles them. Exported for analysis tooling.
func (s *Spec) TransitionFromState(fn string) string { return s.fromState(fn) }

// NewStateMachine compiles the spec's transition declarations into an
// explicit state machine and precomputes the shortest recovery walks. It
// fails if any pure function's state is unreachable from s0, which would
// make descriptors in that state unrecoverable.
func NewStateMachine(spec *Spec) (*StateMachine, error) {
	m := &StateMachine{
		spec:  spec,
		next:  make(map[stateFn]string),
		walks: make(map[string][]string),
	}
	stateSet := map[string]bool{StateInitial: true, StateFaulty: true}
	for _, tr := range spec.Transitions {
		from := spec.fromState(tr.From)
		to := spec.stateAfter(tr.To)
		if to == "" {
			// Transition into an update/per-thread function: validity
			// declaration only; state unchanged.
			to = from
		}
		key := stateFn{from, tr.To}
		if prev, dup := m.next[key]; dup && prev != to {
			return nil, fmt.Errorf("%w: %s: ambiguous transition σ(%s, %s)", ErrInvalidSpec, spec.Service, from, tr.To)
		}
		m.next[key] = to
		stateSet[from] = true
		stateSet[to] = true
	}
	// Creation functions leave s_f (or nonexistence) for s0.
	for _, cfn := range spec.Creation {
		m.next[stateFn{StateFaulty, cfn}] = StateInitial
	}

	// BFS from s0 for shortest walks over pure functions only.
	m.walks[StateInitial] = nil
	queue := []string{StateInitial}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		base := m.walks[cur]
		var fns []string
		for key := range m.next {
			if key.state == cur && spec.IsPure(key.fn) {
				fns = append(fns, key.fn)
			}
		}
		sort.Strings(fns)
		for _, fn := range fns {
			nxt := m.next[stateFn{cur, fn}]
			if _, seen := m.walks[nxt]; seen {
				continue
			}
			walk := make([]string, len(base)+1)
			copy(walk, base)
			walk[len(base)] = fn
			m.walks[nxt] = walk
			queue = append(queue, nxt)
		}
	}

	// Every pure function's state must be walk-reachable.
	for _, f := range spec.Funcs {
		if !spec.IsPure(f.Name) {
			continue
		}
		if _, ok := m.walks[f.Name]; !ok {
			return nil, fmt.Errorf("%w: %s: state %q unreachable from s0 through non-blocking transitions", ErrInvalidSpec, spec.Service, f.Name)
		}
	}

	m.states = make([]string, 0, len(stateSet))
	for st := range stateSet {
		m.states = append(m.states, st)
	}
	sort.Strings(m.states)
	return m, nil
}

// Spec returns the specification the machine was compiled from.
func (m *StateMachine) Spec() *Spec { return m.spec }

// States returns S_dr in sorted order.
func (m *StateMachine) States() []string {
	out := make([]string, len(m.states))
	copy(out, m.states)
	return out
}

// Next is σ: it returns the shared state reached by applying fn in state,
// and whether the transition is valid. Update and per-thread functions are
// valid in every live state and leave it unchanged; other functions follow
// the declared transitions. Invalid transitions are a fault-detection signal
// (§III-B: "formalizing valid transitions enables fault detection if invalid
// branches are attempted").
func (m *StateMachine) Next(state, fn string) (string, bool) {
	if state == StateClosed {
		return "", false
	}
	if m.spec.IsUpdate(fn) || m.spec.IsPerThread(fn) {
		return state, true
	}
	nxt, ok := m.next[stateFn{state, fn}]
	return nxt, ok
}

// Walk returns the precomputed shortest pure-function sequence that drives a
// freshly created descriptor (in s0) to the given shared state. The boolean
// is false for unknown states.
func (m *StateMachine) Walk(state string) ([]string, bool) {
	w, ok := m.walks[state]
	if !ok {
		return nil, false
	}
	out := make([]string, len(w))
	copy(out, w)
	return out, true
}

// RecoveryWalk returns the full function sequence that recovers a descriptor
// from s_f to the expected shared state: the original creation call, the
// shortest path from s0 (mechanism R0), and finally any sm_restore functions
// that push tracked meta-data back into the server (the "open and lseek"
// pattern).
func (m *StateMachine) RecoveryWalk(creationFn, expected string) ([]string, error) {
	if _, ok := m.next[stateFn{StateFaulty, creationFn}]; !ok {
		return nil, fmt.Errorf("core: %s: %s is not a creation function", m.spec.Service, creationFn)
	}
	tail, ok := m.walks[expected]
	if !ok {
		return nil, fmt.Errorf("core: %s: no recovery walk to state %q", m.spec.Service, expected)
	}
	walk := make([]string, 0, len(tail)+1+len(m.spec.Restore))
	walk = append(walk, creationFn)
	walk = append(walk, tail...)
	walk = append(walk, m.spec.Restore...)
	return walk, nil
}

package core

import (
	"errors"
	"fmt"

	"superglue/internal/cbuf"
	"superglue/internal/fault"
	"superglue/internal/kernel"
	"superglue/internal/obs"
	"superglue/internal/storage"
)

// RecoveryMode selects between the two recovery timings of §III-C.
type RecoveryMode int

// Recovery modes.
const (
	// OnDemand (T1) delays descriptor recovery until a thread accesses the
	// descriptor, so recovery runs at the accessing thread's priority.
	OnDemand RecoveryMode = iota + 1
	// Eager (T0 generalized) recovers every tracked descriptor of every
	// client immediately after a µ-reboot, on the rebooting thread.
	Eager
)

// String implements fmt.Stringer.
func (m RecoveryMode) String() string {
	switch m {
	case OnDemand:
		return "on-demand"
	case Eager:
		return "eager"
	default:
		return fmt.Sprintf("RecoveryMode(%d)", int(m))
	}
}

// Upcall function names routed to client components by the recovery runtime.
const (
	// FnRecover asks a client to recover one of its descriptors
	// (mechanisms D1/U0 across components). Args: server component,
	// descriptor NS, descriptor ID.
	FnRecover = "sg.recover"
	// FnRecreate asks the creator of a global descriptor to rebuild it
	// (mechanisms G0/U0). Args: server component, stale server-side ID.
	// Returns the descriptor's new server-side ID.
	FnRecreate = "sg.recreate"
	// FnRebuilt notifies a client component that a descriptor mapped into
	// its namespace was rebuilt by another component's recovery (the
	// memory-manager upcalls of §II-D: "upcalls are made into client
	// components in order to rebuild correct state between dependent
	// mappings ... transparent to client execution"). Args: server
	// component, descriptor NS, descriptor ID. Clients may register an
	// FnRebuilt handler to revalidate local state; without one the
	// notification is a no-op.
	FnRebuilt = "sg.rebuilt"
)

// Runtime errors.
var (
	// ErrUnknownFunction reports a stub call naming a function absent from
	// the interface specification.
	ErrUnknownFunction = errors.New("core: function not in interface specification")
	// ErrUnknownDescriptor reports a non-global descriptor the client
	// never created — a client bug, not a recoverable condition.
	ErrUnknownDescriptor = errors.New("core: descriptor not tracked by this client")
	// ErrInvalidTransition reports an interface call that is invalid in
	// the descriptor's current state — the state machine acting as a fault
	// detector.
	ErrInvalidTransition = errors.New("core: invalid descriptor state transition")
	// ErrRecoveryFailed reports that recovery could not restore a
	// consistent state within the retry budget.
	ErrRecoveryFailed = errors.New("core: recovery failed")
)

// fnInfo is the precompiled per-function dispatch record: everything the
// hot stub path needs without re-deriving it from the specification.
type fnInfo struct {
	f           *FuncSpec
	descIdx     int
	nsIdx       int
	parentIdx   int
	parentNSIdx int
	dataIdxs    []int // RoleDescData parameter positions
	isCreate    bool
	isTerminal  bool
	isBlocking  bool
	isWakeup    bool
	isReset     bool
	isUpdate    bool
	isPure      bool
	isHold      bool
	isRelease   bool
	// needsArgs marks functions whose latest argument list must be
	// retained for recovery: only creation, pure-transition, and
	// sm_restore functions can appear in a recovery walk (see
	// NewStateMachine's BFS and RecoveryWalk), and buildWalkArgs is the
	// sole consumer of Descriptor.LastArgs — per-thread hold replay uses
	// its own tt.Args. Skipping the copy for everything else keeps the
	// steady-state wakeup/block path allocation- and map-write-free.
	needsArgs bool
	retAccum  string
}

// serverEntry is the per-server bookkeeping the runtime keeps.
type serverEntry struct {
	spec  *Spec
	sm    *StateMachine
	class storage.Class
	comp  kernel.ComponentID
	stubs []*ClientStub
	fns   map[string]*fnInfo
	// hasHold records whether any interface function is a hold: when none
	// is, no per-thread tracking entry can exist, and the stub's tracking
	// fast path skips the PerThread map probe on blocking/wakeup/release
	// calls entirely.
	hasHold bool
	// dataHint / fnHint pre-size new descriptors' Data and LastArgs maps:
	// the number of distinct desc_data parameter names and of interface
	// functions in the spec.
	dataHint int
	fnHint   int
}

// compileFns builds the per-function dispatch records.
func compileFns(spec *Spec) map[string]*fnInfo {
	out := make(map[string]*fnInfo, len(spec.Funcs))
	for _, f := range spec.Funcs {
		info := &fnInfo{
			f:           f,
			descIdx:     f.DescIdx(),
			nsIdx:       f.NSIdx(),
			parentIdx:   f.ParentIdx(),
			parentNSIdx: f.ParentNSIdx(),
			isCreate:    spec.IsCreation(f.Name),
			isTerminal:  spec.IsTerminal(f.Name),
			isBlocking:  spec.IsBlocking(f.Name),
			isWakeup:    spec.IsWakeup(f.Name),
			isReset:     spec.IsReset(f.Name),
			isUpdate:    spec.IsUpdate(f.Name),
			isPure:      spec.IsPure(f.Name),
			retAccum:    f.RetAccum,
		}
		_, info.isHold = spec.HoldFn(f.Name)
		_, info.isRelease = spec.ReleaseFn(f.Name)
		info.needsArgs = info.isCreate || info.isPure || spec.IsRestore(f.Name)
		for i, p := range f.Params {
			if p.Role == RoleDescData {
				info.dataIdxs = append(info.dataIdxs, i)
			}
		}
		out[f.Name] = info
	}
	return out
}

// System wires a kernel, the cbuf manager, the storage component, and the
// SuperGlue recovery runtime together: the assembly a booter would perform
// on a real COMPOSITE system.
type System struct {
	kern      *kernel.Kernel
	cm        *cbuf.Manager
	store     *storage.Store
	storeComp kernel.ComponentID
	mode      RecoveryMode
	policy    RecoveryPolicy
	// polGen is bumped by SetRecoveryPolicy; stubs cache their effective
	// policy and rebuild it when their generation falls behind.
	polGen    uint64
	servers   map[kernel.ComponentID]*serverEntry
	byName    map[string]*serverEntry
	nextClass storage.Class
	clients   []*Client
	// deps is the declared depends-on graph between server components,
	// driving the cascading-reboot rung of the escalation ladder: when
	// retrying a server alone does not clear a fault, its dependencies are
	// µ-rebooted too (leaves first), flushing corrupted state the server
	// may be re-reading from them.
	deps map[kernel.ComponentID][]kernel.ComponentID
	// faultHandlers are the runtime-registered per-kind recovery handlers
	// (see dispatcher.go); nil when none are registered.
	faultHandlers map[fault.Kind]FaultHandler
	// sup is the compiled supervision tree, or nil for the flat legacy
	// restart policy (see supervisor.go).
	sup *supTree
}

// NewSystem constructs a machine with the trusted substrate (kernel, cbuf
// manager, storage component) booted and the recovery runtime in the given
// mode. The machine has one simulated core; NewSystemWithCores boots a
// multi-core machine.
func NewSystem(mode RecoveryMode) (*System, error) {
	return NewSystemWithCores(mode, 1)
}

// NewSystemWithStorage constructs a machine with cores simulated cores and
// a storage component replicated over replicas backends (quorum reads,
// per-replica WAL + checkpoints; see docs/STORAGE.md). replicas < 1 is
// clamped to 1, the paper's trusted single copy.
func NewSystemWithStorage(mode RecoveryMode, cores, replicas int) (*System, error) {
	return newSystem(mode, cores, replicas)
}

// NewSystemWithCores constructs a machine with cores simulated cores (see
// DESIGN.md §11): per-core run queues and virtual clocks with a
// deterministic merge, so a fixed seed yields the same schedule for any
// real GOMAXPROCS. Components execute on their caller's core until placed
// on a home core with PlaceServer.
func NewSystemWithCores(mode RecoveryMode, cores int) (*System, error) {
	return newSystem(mode, cores, 1)
}

func newSystem(mode RecoveryMode, cores, replicas int) (*System, error) {
	if mode != OnDemand && mode != Eager {
		return nil, fmt.Errorf("core: unknown recovery mode %d", int(mode))
	}
	k := kernel.NewWithCores(cores)
	cm := cbuf.NewManager(0)
	st := storage.NewReplicated(cm, replicas)
	storeComp, err := k.Register(func() kernel.Service { return storage.NewComponent(st) })
	if err != nil {
		return nil, fmt.Errorf("core: booting storage component: %w", err)
	}
	s := &System{
		kern:      k,
		cm:        cm,
		store:     st,
		storeComp: storeComp,
		mode:      mode,
		policy:    DefaultRecoveryPolicy(),
		servers:   make(map[kernel.ComponentID]*serverEntry),
		byName:    make(map[string]*serverEntry),
		deps:      make(map[kernel.ComponentID][]kernel.ComponentID),
	}
	if mode == Eager {
		k.AddRebootHook(s.eagerRebootHook)
	}
	return s, nil
}

// Kernel returns the simulated machine.
func (s *System) Kernel() *kernel.Kernel { return s.kern }

// Cores returns the number of simulated cores.
func (s *System) Cores() int { return s.kern.NumCores() }

// PlaceServer pins a registered server component (or the storage
// component) to a home core: every invocation from a thread on another
// core becomes a cross-core synchronous invocation (the caller migrates
// over and back), and µ-reboots re-initialize the component on its home
// core. A negative core clears the placement, restoring execute-on-
// caller's-core behavior.
func (s *System) PlaceServer(comp kernel.ComponentID, core int) error {
	if _, ok := s.servers[comp]; !ok && comp != s.storeComp {
		return fmt.Errorf("core: PlaceServer: %d is not a registered server", comp)
	}
	return s.kern.SetComponentCore(comp, core)
}

// ServerCore returns a server component's home core (kernel.NoAffinity,
// -1, when the component executes on its caller's core).
func (s *System) ServerCore(comp kernel.ComponentID) (int, error) {
	return s.kern.ComponentCore(comp)
}

// Cbufs returns the zero-copy buffer manager.
func (s *System) Cbufs() *cbuf.Manager { return s.cm }

// Store returns the storage component's state (reflection access).
func (s *System) Store() *storage.Store { return s.store }

// StorageComp returns the storage component's ID for kernel-mediated access.
func (s *System) StorageComp() kernel.ComponentID { return s.storeComp }

// Mode returns the system's recovery mode.
func (s *System) Mode() RecoveryMode { return s.mode }

// SetTracer installs (or, with nil, removes) the recovery-observability
// recorder on the underlying kernel. The kernel records invocation,
// fault, reboot, reflection, and upcall events; the recovery runtime
// adds per-mechanism spans (R0/T0/T1/D0/D1/G0/G1/U0) around descriptor
// recovery, so a Snapshot of the recorder yields the per-mechanism
// recovery-latency breakdown of the evaluation.
// The storage replication layer shares the recorder: per-replica
// write/checkpoint counters and quorum/rebuild events land in the same
// snapshot.
func (s *System) SetTracer(r *obs.Recorder) {
	s.kern.SetTracer(r)
	if r == nil {
		s.store.SetObserver(nil)
		return
	}
	s.store.SetObserver(r)
}

// Tracer returns the installed recovery-observability recorder, or nil.
func (s *System) Tracer() *obs.Recorder { return s.kern.Tracer() }

// Policy returns the system-wide recovery policy.
func (s *System) Policy() RecoveryPolicy { return s.policy }

// SetRecoveryPolicy replaces the system-wide recovery policy. Zeroed limit
// fields take the defaults (see RecoveryPolicy). Call before threads run;
// the simulator is single-core, so there is no racing stub call.
func (s *System) SetRecoveryPolicy(p RecoveryPolicy) {
	s.policy = p.normalized()
	s.polGen++ // invalidate every stub's cached effective policy
}

// DeclareDependency records that server `from` depends on server `to`: a
// fault in `from` that survives plain retries escalates to a µ-reboot of
// `to` (and transitively of `to`'s own dependencies, leaves first). Both
// must be registered servers — except `to`, which may also be the storage
// component.
func (s *System) DeclareDependency(from, to kernel.ComponentID) error {
	if _, ok := s.servers[from]; !ok {
		return fmt.Errorf("core: DeclareDependency: %d is not a registered server", from)
	}
	if _, ok := s.servers[to]; !ok && to != s.storeComp {
		return fmt.Errorf("core: DeclareDependency: %d is not a registered server", to)
	}
	for _, d := range s.deps[from] {
		if d == to {
			return nil
		}
	}
	s.deps[from] = append(s.deps[from], to)
	return nil
}

// Dependencies returns the declared direct dependencies of a server.
func (s *System) Dependencies(comp kernel.ComponentID) []kernel.ComponentID {
	out := make([]kernel.ComponentID, len(s.deps[comp]))
	copy(out, s.deps[comp])
	return out
}

// cascadeReboot is the second rung of the escalation ladder: µ-reboot the
// transitive dependencies of server (leaves first, each at most once, cycles
// tolerated) and then force the server itself through a fresh µ-reboot, so
// the next redo runs against a server whose whole supporting state has been
// rebuilt from clean images.
func (s *System) cascadeReboot(t *kernel.Thread, server kernel.ComponentID) error {
	visited := map[kernel.ComponentID]bool{server: true}
	var walk func(id kernel.ComponentID) error
	walk = func(id kernel.ComponentID) error {
		for _, dep := range s.deps[id] {
			if visited[dep] {
				continue
			}
			visited[dep] = true
			if err := walk(dep); err != nil {
				return err
			}
			if _, err := s.kern.Reboot(t, dep); err != nil {
				return fmt.Errorf("core: cascading reboot of dependency %d: %w", dep, err)
			}
		}
		return nil
	}
	if err := walk(server); err != nil {
		return err
	}
	if _, err := s.kern.Reboot(t, server); err != nil {
		return fmt.Errorf("core: cascading reboot of server %d: %w", server, err)
	}
	return nil
}

// invokeStorage invokes the storage component with a bounded
// reboot-and-redo loop: a crash of the storage instance (KindStorageCrash
// or any fail-stop fault in it) is recovered by µ-rebooting it — its data
// survives the reboot (mechanism G1) — and retrying the operation. The
// retry budget is the system policy's total attempt budget; non-fault
// errors and faults in other components pass through.
func (s *System) invokeStorage(t *kernel.Thread, fn string, args ...kernel.Word) (kernel.Word, error) {
	for attempt := 0; ; attempt++ {
		ret, err := s.kern.Invoke(t, s.storeComp, fn, args...)
		if err == nil {
			return ret, nil
		}
		flt, isFault := kernel.AsFault(err)
		if !isFault || flt.Comp != s.storeComp || attempt >= s.policy.maxAttempts() {
			return ret, err
		}
		if flt.Transient {
			continue // retransmission: the instance is fine
		}
		if _, rerr := s.kern.EnsureRebooted(t, s.storeComp, flt.Epoch); rerr != nil {
			return ret, fmt.Errorf("core: µ-reboot of storage: %w", rerr)
		}
	}
}

// RegisterServer boots a recoverable server component: it validates the
// interface specification, compiles the state machine, wraps the component's
// clean image with the SuperGlue server-side stub, and registers the result
// with the kernel. The factory is the µ-reboot image: every reboot
// constructs a fresh instance (re-wrapped in a fresh stub).
func (s *System) RegisterServer(spec *Spec, factory func() kernel.Service) (kernel.ComponentID, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	if _, dup := s.byName[spec.Service]; dup {
		return 0, fmt.Errorf("core: server %q already registered", spec.Service)
	}
	sm, err := NewStateMachine(spec)
	if err != nil {
		return 0, err
	}
	s.nextClass++
	entry := &serverEntry{spec: spec, sm: sm, class: s.nextClass, fns: compileFns(spec)}
	for _, f := range spec.Funcs {
		if entry.fns[f.Name].isHold {
			entry.hasHold = true
			break
		}
	}
	entry.fnHint = len(spec.Funcs)
	dataNames := make(map[string]struct{})
	for _, f := range spec.Funcs {
		for _, p := range f.Params {
			if p.Role == RoleDescData {
				dataNames[p.Name] = struct{}{}
			}
		}
	}
	entry.dataHint = len(dataNames)
	comp, err := s.kern.Register(func() kernel.Service {
		return newServerStub(s, entry, factory())
	})
	if err != nil {
		return 0, err
	}
	entry.comp = comp
	s.servers[comp] = entry
	s.byName[spec.Service] = entry
	// A server whose descriptors are globally addressable (G_dr) or whose
	// resources carry redundantly stored data (D_r) reads the storage
	// component on recovery: declare that dependency so the cascading
	// rung of the escalation ladder rebuilds storage's component instance
	// too. (The store's data itself survives reboots — it is the
	// redundancy, mechanism G1.)
	if spec.DescIsGlobal || spec.RescHasData {
		s.deps[comp] = append(s.deps[comp], s.storeComp)
	}
	return comp, nil
}

// ServerSpec returns the spec of a registered server.
func (s *System) ServerSpec(comp kernel.ComponentID) (*Spec, bool) {
	e, ok := s.servers[comp]
	if !ok {
		return nil, false
	}
	return e.spec, true
}

// ServerByName returns the component ID of a registered server.
func (s *System) ServerByName(service string) (kernel.ComponentID, bool) {
	e, ok := s.byName[service]
	if !ok {
		return 0, false
	}
	return e.comp, true
}

// Class returns the storage class assigned to a server (G0/G1 namespace).
func (s *System) Class(comp kernel.ComponentID) (storage.Class, bool) {
	e, ok := s.servers[comp]
	if !ok {
		return 0, false
	}
	return e.class, true
}

// eagerRebootHook recovers every descriptor of every client of the rebooted
// component, roots first (Eager mode).
func (s *System) eagerRebootHook(t *kernel.Thread, comp kernel.ComponentID, epoch uint64) {
	entry, ok := s.servers[comp]
	if !ok || t == nil {
		return
	}
	for _, stub := range entry.stubs {
		for _, d := range stub.tracker.Live() {
			// recoverDesc orders parents first (D1); errors here surface
			// again on demand, when the failing descriptor is accessed.
			// Spans recorded here classify as eager recovery (T0).
			_ = stub.recoverDescTimed(t, d, obs.MechT0)
		}
	}
}

// UpcallHandler is an application-level upcall entry point in a client.
type UpcallHandler func(t *kernel.Thread, args []kernel.Word) (kernel.Word, error)

// Client is a client protection domain: an application (or mid-level
// service) component that holds stubs for the servers it invokes. Clients
// are where SuperGlue's descriptor tracking lives; they are not themselves
// µ-rebooted (application fault tolerance is out of scope, §II-E).
type Client struct {
	sys      *System
	comp     kernel.ComponentID
	name     string
	stubs    map[kernel.ComponentID]*ClientStub
	handlers map[string]UpcallHandler
}

var _ kernel.Service = (*Client)(nil)

// NewClient registers a client component.
func (s *System) NewClient(name string) (*Client, error) {
	c := &Client{
		sys:      s,
		name:     name,
		stubs:    make(map[kernel.ComponentID]*ClientStub),
		handlers: make(map[string]UpcallHandler),
	}
	comp, err := s.kern.Register(func() kernel.Service { return c })
	if err != nil {
		return nil, err
	}
	c.comp = comp
	s.clients = append(s.clients, c)
	return c, nil
}

// Name implements kernel.Service.
func (c *Client) Name() string { return c.name }

// Init implements kernel.Service.
func (c *Client) Init(bc *kernel.BootContext) error { return nil }

// ID returns the client's component ID.
func (c *Client) ID() kernel.ComponentID { return c.comp }

// System returns the owning system.
func (c *Client) System() *System { return c.sys }

// Handle registers an application-level upcall handler.
func (c *Client) Handle(fn string, h UpcallHandler) {
	c.handlers[fn] = h
}

// Stub returns (creating on first use) this client's stub for the given
// server. The stub is the client side of the interface: it interposes on
// every invocation, tracks descriptors, and drives recovery.
func (c *Client) Stub(server kernel.ComponentID) (*ClientStub, error) {
	if st, ok := c.stubs[server]; ok {
		return st, nil
	}
	entry, ok := c.sys.servers[server]
	if !ok {
		return nil, fmt.Errorf("core: component %d is not a registered SuperGlue server", server)
	}
	ref, err := c.sys.kern.Ref(server)
	if err != nil {
		return nil, err
	}
	st := &ClientStub{
		sys:     c.sys,
		client:  c,
		server:  server,
		entry:   entry,
		tracker: newTracker(entry.spec),
		ref:     ref,
		xcAlloc: c.sys.kern.NumCores() > 1,
	}
	st.rebuildPolicy()
	c.stubs[server] = st
	entry.stubs = append(entry.stubs, st)
	return st, nil
}

// Dispatch implements kernel.Service: it routes recovery upcalls to the
// owning stub and anything else to application handlers.
func (c *Client) Dispatch(t *kernel.Thread, fn string, args []kernel.Word) (kernel.Word, error) {
	switch fn {
	case FnRecover:
		if len(args) < 3 {
			return 0, fmt.Errorf("core: %s needs 3 args, got %d", fn, len(args))
		}
		stub, ok := c.stubs[kernel.ComponentID(args[0])]
		if !ok {
			return 0, fmt.Errorf("core: %s: no stub for server %d in client %s", fn, args[0], c.name)
		}
		return stub.handleRecoverUpcall(t, DescKey{NS: args[1], ID: args[2]})
	case FnRecreate:
		if len(args) < 2 {
			return 0, fmt.Errorf("core: %s needs 2 args, got %d", fn, len(args))
		}
		stub, ok := c.stubs[kernel.ComponentID(args[0])]
		if !ok {
			return 0, fmt.Errorf("core: %s: no stub for server %d in client %s", fn, args[0], c.name)
		}
		return stub.handleRecreateUpcall(t, args[1])
	case FnRebuilt:
		if h, ok := c.handlers[fn]; ok {
			return h(t, args)
		}
		return 0, nil // transparent to client execution by default
	default:
		if h, ok := c.handlers[fn]; ok {
			return h(t, args)
		}
		return 0, kernel.DispatchError(c.name, fn)
	}
}

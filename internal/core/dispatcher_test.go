package core

import (
	"errors"
	"testing"

	"superglue/internal/fault"
	"superglue/internal/kernel"
)

func TestParseFaultAction(t *testing.T) {
	for _, a := range []FaultAction{ActionReboot, ActionRetry, ActionDegrade} {
		back, ok := ParseFaultAction(a.String())
		if !ok || back != a {
			t.Errorf("ParseFaultAction(%q) = %v, %v; want round-trip", a.String(), back, ok)
		}
	}
	if _, ok := ParseFaultAction("default"); ok {
		t.Error("ParseFaultAction accepted \"default\"; sm_fault must name a concrete action")
	}
	if _, ok := ParseFaultAction("panic"); ok {
		t.Error("ParseFaultAction accepted an unknown action")
	}
}

// failEveryAs is failEvery with a typed fault classification.
func failEveryAs(k *kernel.Kernel, comp kernel.ComponentID, kind fault.Kind, n int) kernel.InvokeHook {
	fired := 0
	return func(t *kernel.Thread, c kernel.ComponentID, fn string, phase kernel.InvokePhase) {
		if c != comp || phase != kernel.PhaseEntry || fired >= n {
			return
		}
		fired++
		_ = k.FailComponentAs(comp, kind, fault.SevUnknown)
	}
}

// TestRouteFaultLayers pins the dispatcher's precedence: registered handler
// first, then the interface's sm_fault declaration, then the kind's
// built-in default.
func TestRouteFaultLayers(t *testing.T) {
	r := newRig(t, OnDemand)
	flip := &kernel.Fault{Comp: r.lock, Kind: fault.KindRegisterFlip, Severity: fault.SevError}
	loss := &kernel.Fault{Comp: r.lock, Kind: fault.KindMessageLoss, Severity: fault.SevWarning, Transient: true}
	unknown := &kernel.Fault{Comp: r.lock}

	// Built-in defaults: unclassified and permanent kinds reboot (the
	// pre-taxonomy behavior), transient kinds retransmit.
	if got := r.sys.routeFault(nil, unknown); got != ActionReboot {
		t.Errorf("routeFault(unknown) = %v; want reboot", got)
	}
	if got := r.sys.routeFault(nil, flip); got != ActionReboot {
		t.Errorf("routeFault(flip) = %v; want reboot", got)
	}
	if got := r.sys.routeFault(nil, loss); got != ActionRetry {
		t.Errorf("routeFault(loss) = %v; want retry", got)
	}

	// Interface layer: an sm_fault declaration overrides the default.
	spec := &Spec{FaultActions: map[string]string{"register-flip": "degrade"}}
	if got := r.sys.routeFault(spec, flip); got != ActionDegrade {
		t.Errorf("routeFault(spec, flip) = %v; want declared degrade", got)
	}
	// ...but never applies to unclassified faults.
	if got := r.sys.routeFault(spec, unknown); got != ActionReboot {
		t.Errorf("routeFault(spec, unknown) = %v; want reboot", got)
	}

	// Handler layer: a registered handler overrides the declaration, sees
	// the typed event, and ActionDefault falls through.
	var seen fault.Event
	r.sys.HandleFault(fault.KindRegisterFlip, func(ev fault.Event) FaultAction {
		seen = ev
		return ActionReboot
	})
	if got := r.sys.routeFault(spec, flip); got != ActionReboot {
		t.Errorf("handler override = %v; want reboot", got)
	}
	if seen.Kind != fault.KindRegisterFlip || seen.Component != int32(r.lock) {
		t.Errorf("handler saw event %+v; want the routed fault", seen)
	}
	r.sys.HandleFault(fault.KindRegisterFlip, func(fault.Event) FaultAction { return ActionDefault })
	if got := r.sys.routeFault(spec, flip); got != ActionDegrade {
		t.Errorf("ActionDefault handler = %v; must fall through to the declaration", got)
	}
	r.sys.HandleFault(fault.KindRegisterFlip, nil)
	if got := r.sys.routeFault(nil, flip); got != ActionReboot {
		t.Errorf("after handler removal = %v; want built-in default", got)
	}
}

// TestSmFaultDegradeEndToEnd: an interface declaring
// sm_fault(register_flip, degrade) makes the stub degrade immediately —
// no µ-reboot, no retry budget burned.
func TestSmFaultDegradeEndToEnd(t *testing.T) {
	r := newRig(t, OnDemand)
	k := r.sys.Kernel()
	k.SetInvokeHook(failEveryAs(k, r.lock, fault.KindRegisterFlip, 1))
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		st.Spec().FaultActions = map[string]string{"register-flip": "degrade"}
		_, err := st.Call(th, "lock_alloc", 1)
		if !errors.Is(err, ErrDegraded) {
			t.Fatalf("err = %v; want immediate ErrDegraded", err)
		}
		var de *DegradedError
		if !errors.As(err, &de) || de.Attempts != 0 {
			t.Fatalf("err = %#v; want degradation on attempt 0", err)
		}
		if e, _ := k.Epoch(r.lock); e != 0 {
			t.Errorf("lock epoch = %d; a declared-unrecoverable fault must not reboot", e)
		}
	})
}

// TestHandlerDegradeOverridesDefault: a runtime handler turns the default
// reboot ladder into immediate degradation for one kind, end to end.
func TestHandlerDegradeOverridesDefault(t *testing.T) {
	r := newRig(t, OnDemand)
	r.sys.HandleFault(fault.KindLivelock, func(fault.Event) FaultAction { return ActionDegrade })
	k := r.sys.Kernel()
	k.SetInvokeHook(failEveryAs(k, r.lock, fault.KindLivelock, 1))
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		if _, err := st.Call(th, "lock_alloc", 1); !errors.Is(err, ErrDegraded) {
			t.Fatalf("err = %v; want ErrDegraded from the handler", err)
		}
		if e, _ := k.Epoch(r.lock); e != 0 {
			t.Errorf("lock epoch = %d; handler-degraded fault must not reboot", e)
		}
	})
}

// TestTransientFaultRetriesWithoutReboot: message loss is recovered by
// retransmission — the redo succeeds against the same epoch, and the
// healthy server is never µ-rebooted.
func TestTransientFaultRetriesWithoutReboot(t *testing.T) {
	r := newRig(t, OnDemand)
	k := r.sys.Kernel()
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		k.InjectTransientFault(th, r.lock, fault.KindMessageLoss)
		id, err := st.Call(th, "lock_alloc", 1)
		if err != nil {
			t.Fatalf("alloc despite message loss: %v", err)
		}
		if id == 0 {
			t.Fatal("alloc returned no descriptor")
		}
		if e, _ := k.Epoch(r.lock); e != 0 {
			t.Errorf("lock epoch = %d; retransmission must not reboot", e)
		}
		if got := st.Metrics().Redos; got != 1 {
			t.Errorf("redos = %d; want exactly 1 retransmission", got)
		}
		if k.Faulty(r.lock) {
			t.Error("server marked faulty by a transient fault")
		}
	})
}

// TestTransientFaultBudgetExhaustion: endless message loss still terminates
// through the policy's attempt budget.
func TestTransientFaultBudgetExhaustion(t *testing.T) {
	r := newRig(t, OnDemand)
	r.sys.SetRecoveryPolicy(RecoveryPolicy{MaxRetries: 2, CascadeRetries: 1, Degrade: true})
	k := r.sys.Kernel()
	k.SetInvokeHook(func(t *kernel.Thread, c kernel.ComponentID, fn string, phase kernel.InvokePhase) {
		if c == r.lock && phase == kernel.PhaseEntry {
			k.InjectTransientFault(t, r.lock, fault.KindMessageLoss)
		}
	})
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		_, err := st.Call(th, "lock_alloc", 1)
		if !errors.Is(err, ErrDegraded) {
			t.Fatalf("err = %v; want ErrDegraded after the retry budget", err)
		}
		if e, _ := k.Epoch(r.lock); e != 0 {
			t.Errorf("lock epoch = %d; transient exhaustion must never have rebooted", e)
		}
	})
}

// TestDuplicateDeliveryRedelivers: a duplicated message executes the server
// function twice; the caller sees one (the second) result and no fault.
func TestDuplicateDeliveryRedelivers(t *testing.T) {
	r := newRig(t, OnDemand)
	k := r.sys.Kernel()
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		k.DuplicateNext(th, r.lock)
		id, err := st.Call(th, "lock_alloc", 1)
		if err != nil {
			t.Fatalf("alloc with duplication: %v", err)
		}
		// The fake lock hands out sequential IDs: a duplicate delivery
		// allocates twice, so the visible result is the second ID.
		if id != 2 {
			t.Errorf("alloc = %d; want 2 (double execution)", id)
		}
		if e, _ := k.Epoch(r.lock); e != 0 {
			t.Errorf("lock epoch = %d; duplication must not reboot", e)
		}
	})
}

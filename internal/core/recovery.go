package core

import (
	"errors"
	"fmt"
	"sort"

	"superglue/internal/kernel"
	"superglue/internal/obs"
	"superglue/internal/storage"
)

// span measures one recovery-mechanism firing for the trace recorder:
// virtual time and completed kernel invocations between begin and end.
// A zero span (nil tracer) makes every method a no-op, so
// instrumentation sites stay unconditional.
type span struct {
	tr     *obs.Recorder
	kern   *kernel.Kernel
	vt0    kernel.Time
	steps0 uint64
}

// beginSpan opens a measurement span against the system's tracer.
func (s *ClientStub) beginSpan() span {
	tr := s.sys.kern.Tracer()
	if tr == nil {
		return span{}
	}
	return span{tr: tr, kern: s.sys.kern, vt0: s.sys.kern.Now(), steps0: s.sys.kern.InvocationCount()}
}

// end records the span as one firing of mech for the stub's server.
func (sp span) end(mech obs.Mechanism, comp kernel.ComponentID, t *kernel.Thread, fn string, gen uint64) {
	if sp.tr == nil {
		return
	}
	now := sp.kern.Now()
	var tid int32
	if t != nil {
		tid = int32(t.ID())
	}
	sp.tr.RecordRecovery(mech, int32(comp), tid, fn, int64(now), gen,
		int64(now-sp.vt0), sp.kern.InvocationCount()-sp.steps0)
}

// endIfWork records the span only when it covered at least one kernel
// invocation — for call sites that may be no-ops (already-current
// descriptors), so idle passes do not inflate mechanism counts.
func (sp span) endIfWork(mech obs.Mechanism, comp kernel.ComponentID, t *kernel.Thread, fn string, gen uint64) {
	if sp.tr == nil || sp.kern.InvocationCount() == sp.steps0 {
		return
	}
	sp.end(mech, comp, t, fn, gen)
}

// recoverDesc restores one descriptor in the (µ-rebooted) server to the
// client's expected state: mechanism R0, ordered by D1, executing at the
// calling thread's priority (T1). The walk replays the descriptor's creation
// function, the precomputed shortest path to its tracked state, and any
// restore functions, translating stale identifiers as it goes.
func (s *ClientStub) recoverDesc(t *kernel.Thread, d *Descriptor) error {
	return s.recoverDescTimed(t, d, obs.MechT1)
}

// recoverDescTimed is recoverDesc with the recovery timing recorded for
// the tracer: trigger says whether this recovery runs eagerly at reboot
// time (T0, from the eager reboot hook) or on demand at access time
// (T1, every other path). A completed recovery records one R0 span (the
// walk replay itself) plus one trigger span with the same cost.
func (s *ClientStub) recoverDescTimed(t *kernel.Thread, d *Descriptor, trigger obs.Mechanism) error {
	if d.Closed {
		return nil
	}
	cur := s.epoch()
	if d.Epoch == cur {
		return nil
	}
	spec := s.entry.spec
	s.metrics.recoveries.Add(1)

	// One walker per descriptor: the walk can still park even inside the
	// non-preemptible section below (at a µ-reboot boot gate, or blocking
	// inside a hold replay), and a thread that passed the epoch check
	// before such a park would replay the walk a second time when it
	// resumes, clobbering the server identity the first walker published
	// — the client would then wait on a descriptor nobody ever triggers.
	// Later arrivals park until the walker finishes and re-check; wakeups
	// here can be spurious (a divert aimed at the parked thread), so the
	// loop re-examines both conditions rather than trusting the wake.
	for d.recovering {
		d.recoverWaiters = append(d.recoverWaiters, t.ID())
		_ = s.sys.kern.Block(t)
		if d.Epoch == s.epoch() {
			return nil
		}
	}
	d.recovering = true
	defer func() {
		d.recovering = false
		for _, w := range d.recoverWaiters {
			_ = s.sys.kern.Wakeup(t, w)
		}
		d.recoverWaiters = nil
	}()

	// The walk is a non-preemptible critical section: another thread must
	// never observe (and re-recover) a half-recovered descriptor.
	s.sys.kern.PushNoPreempt(t)
	defer s.sys.kern.PopNoPreempt(t)
	if d.Epoch == s.epoch() {
		return nil // recovered while we awaited the critical section
	}
	sp := s.beginSpan()

	// D1: the parent must exist in the server before the child can be
	// recreated, root-first along the dependency path.
	if d.Parent != nil && !d.Parent.Closed {
		psp := s.beginSpan()
		ps := d.ParentStub
		if ps == nil || ps == s || ps.client == s.client {
			if ps == nil {
				ps = s
			}
			if err := ps.recoverDescTimed(t, d.Parent, trigger); err != nil {
				return fmt.Errorf("core: recovering parent %v: %w", d.Parent.Key, err)
			}
		} else {
			// U0: the parent is tracked by another client component;
			// recover it with an upcall into that client.
			s.metrics.upcalls.Add(1)
			if _, err := s.sys.kern.Upcall(t, ps.client.comp, FnRecover,
				kernel.Word(ps.server), d.Parent.Key.NS, d.Parent.Key.ID); err != nil {
				return fmt.Errorf("core: upcall recovering parent %v: %w", d.Parent.Key, err)
			}
		}
		psp.endIfWork(obs.MechD1, s.server, t, d.CreatedBy, s.epoch())
	}

	walk, err := s.entry.sm.RecoveryWalk(d.CreatedBy, d.State)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrRecoveryFailed, err)
	}
	oldSID := d.ServerID
	bound := s.policy().MaxRetries
	for attempt := 0; ; attempt++ {
		werr := s.replayWalk(t, d, walk)
		if werr == nil {
			// Re-establish outstanding holds (e.g., a lock held across the
			// fault) on behalf of the threads that held them, before any
			// contender can slip in. The interface carries the holder's
			// thread ID — as COMPOSITE's lock interface does — so any
			// thread can replay a hold for the recorded holder. Holds are
			// part of the same all-or-nothing restoration as the walk: a
			// fault while the hold replay is in flight means the server
			// rebooted again and the walked state is gone too, so the
			// retry replays both.
			werr = s.replayHolds(t, d)
		}
		if werr == nil {
			break
		}
		flt, ok := kernel.AsFault(werr)
		if !ok || flt.Comp != s.server {
			return fmt.Errorf("%w: walk for %v: %v", ErrRecoveryFailed, d.Key, werr)
		}
		if attempt >= bound {
			return fmt.Errorf("%w: walk for %v: %v", ErrRecoveryFailed, d.Key, werr)
		}
		// A second fault during recovery: reboot again, restart the walk.
		if _, rerr := s.sys.kern.EnsureRebooted(t, s.server, flt.Epoch); rerr != nil {
			return fmt.Errorf("%w: re-reboot during walk: %v", ErrRecoveryFailed, rerr)
		}
	}

	// U0 for cross-component dependencies: a rebuilt descriptor that lives
	// in another component's namespace (an alias mapped into it) is
	// announced with an upcall so that component can revalidate, without
	// its threads participating in the recovery (§II-D).
	if spec.DescHasParent == ParentXC && d.Key.NS != 0 && d.Key.NS != kernel.Word(s.client.comp) {
		s.metrics.upcalls.Add(1)
		if _, err := s.sys.kern.Upcall(t, kernel.ComponentID(d.Key.NS), FnRebuilt,
			kernel.Word(s.server), d.Key.NS, d.Key.ID); err != nil &&
			!errors.Is(err, kernel.ErrNoSuchFunction) && !errors.Is(err, kernel.ErrNoSuchComponent) {
			return fmt.Errorf("core: rebuild notification for %v: %w", d.Key, err)
		}
	}

	if spec.DescIsGlobal && d.ServerID != oldSID {
		// G0: publish the ID translation so other clients' stale IDs (and
		// the creator record) resolve to the recreated descriptor. The
		// storage component may itself be down — a correlated fault — so
		// the publish goes through the bounded µ-reboot-and-redo path
		// rather than a bare invocation.
		if _, err := s.sys.invokeStorage(t, storage.FnRemap,
			kernel.Word(s.entry.class), oldSID, d.ServerID); err != nil {
			return fmt.Errorf("core: remapping %v: %w", d.Key, err)
		}
		s.metrics.storageOps.Add(1)
	}
	d.Epoch = s.epoch()
	// One completed recovery = one walk replay (R0) + one timing span
	// (T0 eager / T1 on demand) with the same measured cost.
	sp.end(obs.MechR0, s.server, t, d.CreatedBy, d.Epoch)
	sp.end(trigger, s.server, t, d.CreatedBy, d.Epoch)
	return nil
}

// replayWalk performs one pass over the recovery walk. It returns the fault
// if the server fails mid-walk so the caller can reboot and restart.
func (s *ClientStub) replayWalk(t *kernel.Thread, d *Descriptor, walk []string) error {
	spec := s.entry.spec
	for _, wfn := range walk {
		wf := spec.Func(wfn)
		if wf == nil {
			return fmt.Errorf("walk names unknown function %s", wfn)
		}
		wargs := s.buildWalkArgs(wf, d)
		ret, err := s.sys.kern.Invoke(t, s.server, wfn, wargs...)
		if err != nil {
			return err
		}
		s.metrics.walkSteps.Add(1)
		// G1: a restore step pushes redundantly tracked *resource* data
		// (D_r) back into the server. Ordinary desc_data parameters are
		// descriptor meta-data (D_dr) and belong to the R0 walk itself, so
		// they are deliberately not counted here — G1 stays aligned with
		// the spec's derived mechanism set (RescHasData / sm_restore).
		if tr := s.sys.kern.Tracer(); tr != nil && spec.IsRestore(wfn) {
			tr.RecordRecovery(obs.MechG1, int32(s.server), int32(t.ID()), wfn,
				int64(s.sys.kern.Now()), s.epoch(), 0, 1)
		}
		if spec.IsCreation(wfn) && wf.RetDescID {
			d.ServerID = ret
		}
	}
	return nil
}

// buildWalkArgs synthesizes the argument list for one walk step from the
// descriptor's tracked meta-data and last-seen arguments.
func (s *ClientStub) buildWalkArgs(f *FuncSpec, d *Descriptor) []kernel.Word {
	last := d.LastArgs[f.Name]
	args := make([]kernel.Word, len(f.Params))
	for i, p := range f.Params {
		switch p.Role {
		case RoleDesc:
			args[i] = d.ServerID
		case RoleDescNS:
			args[i] = d.Key.NS
		case RoleParentDesc:
			if d.Parent != nil {
				args[i] = d.Parent.ServerID
			} else if i < len(last) {
				args[i] = last[i]
			}
		case RoleParentNS:
			if d.Parent != nil {
				args[i] = d.Parent.Key.NS
			} else if i < len(last) {
				args[i] = last[i]
			}
		case RoleDescData:
			if v, ok := d.Data[p.Name]; ok {
				args[i] = v
			} else if i < len(last) {
				args[i] = last[i]
			}
		default: // RolePlain
			if i < len(last) {
				args[i] = last[i]
			}
		}
	}
	return args
}

// replayHolds re-establishes every outstanding hold recorded on d (e.g.,
// the lock held across the fault) by replaying the hold functions with
// their recorded arguments — which carry the holding thread's identity, so
// the replay restores ownership to the original holder regardless of which
// thread drives recovery. Contenders woken eagerly then genuinely
// re-contend, reproducing §II-C's "recreating, acquiring, or contending
// locks".
func (s *ClientStub) replayHolds(t *kernel.Thread, d *Descriptor) error {
	if len(d.PerThread) == 0 {
		return nil
	}
	cur := s.epoch()
	tids := make([]kernel.ThreadID, 0, len(d.PerThread))
	for tid := range d.PerThread {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		tt := d.PerThread[tid]
		if tt.HoldFn == "" || tt.Epoch == cur {
			continue
		}
		f := s.entry.spec.Func(tt.HoldFn)
		if f == nil {
			return fmt.Errorf("%w: hold function %s missing", ErrRecoveryFailed, tt.HoldFn)
		}
		args := make([]kernel.Word, len(tt.Args))
		copy(args, tt.Args)
		if di := f.DescIdx(); di >= 0 && di < len(args) {
			args[di] = d.ServerID
		}
		s.metrics.holdReplays.Add(1)
		if _, err := s.sys.kern.Invoke(t, s.server, tt.HoldFn, args...); err != nil {
			// Multi-%w so a *Fault stays detectable: recoverDesc's retry
			// loop re-reboots and replays when the server fails mid-replay.
			return fmt.Errorf("%w: re-acquiring %s for thread %d: %w", ErrRecoveryFailed, tt.HoldFn, tid, err)
		}
		tt.Epoch = cur
	}
	return nil
}

// recoverChildren recovers d and then its entire subtree, children before
// use: the D0 prerequisite for recursive revocation.
func (s *ClientStub) recoverChildren(t *kernel.Thread, d *Descriptor) error {
	if err := s.recoverDesc(t, d); err != nil {
		return err
	}
	for _, c := range d.Children {
		if c.Closed {
			continue
		}
		if err := s.recoverChildren(t, c); err != nil {
			return err
		}
	}
	return nil
}

// handleRecoverUpcall services an FnRecover upcall: another component's
// recovery needs one of this client's descriptors restored (D1 across
// components, U0).
func (s *ClientStub) handleRecoverUpcall(t *kernel.Thread, key DescKey) (kernel.Word, error) {
	d, ok := s.tracker.Lookup(key)
	if !ok {
		return 0, fmt.Errorf("%w: %s %v", ErrUnknownDescriptor, s.entry.spec.Service, key)
	}
	if err := s.recoverDesc(t, d); err != nil {
		return 0, err
	}
	return d.ServerID, nil
}

// handleRecreateUpcall services an FnRecreate upcall (G0): the server-side
// stub found a stale global descriptor ID and asked us — the recorded
// creator — to rebuild it. Returns the descriptor's current server ID.
func (s *ClientStub) handleRecreateUpcall(t *kernel.Thread, staleID kernel.Word) (kernel.Word, error) {
	d, ok := s.tracker.LookupByServerID(staleID)
	if !ok {
		// The ID may already have been remapped by our own recovery.
		now := s.sys.store.Resolve(s.entry.class, staleID)
		if now != staleID {
			if d, ok = s.tracker.LookupByServerID(now); !ok {
				return now, nil
			}
		} else {
			return 0, fmt.Errorf("%w: %s server id %d", ErrUnknownDescriptor, s.entry.spec.Service, staleID)
		}
	}
	if err := s.recoverDesc(t, d); err != nil {
		return 0, err
	}
	// G1 for resources with redundantly stored data: the recreated
	// resource's payload was restored from the storage component.
	if s.entry.spec.RescHasData {
		if tr := s.sys.kern.Tracer(); tr != nil {
			tr.RecordRecovery(obs.MechG1, int32(s.server), int32(t.ID()), FnRecreate,
				int64(s.sys.kern.Now()), s.epoch(), 0, 1)
		}
	}
	return d.ServerID, nil
}

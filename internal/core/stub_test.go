package core

import (
	"errors"
	"fmt"
	"testing"

	"superglue/internal/kernel"
)

// fakeLock is a minimal lock server used to exercise the generic stubs:
// server-assigned descriptor IDs, blocking, holds.
type fakeLock struct {
	k      *kernel.Kernel
	next   kernel.Word
	locks  map[kernel.Word]*fakeLockState
	inited int
}

type fakeLockState struct {
	holder  kernel.ThreadID
	waiters []kernel.ThreadID
}

func newFakeLock() kernel.Service { return &fakeLock{} }

func (f *fakeLock) Name() string { return "lock" }

func (f *fakeLock) Init(bc *kernel.BootContext) error {
	f.k = bc.Kernel
	f.locks = make(map[kernel.Word]*fakeLockState)
	// Server-assigned IDs restart from a fresh namespace each epoch so that
	// recovered descriptors genuinely receive new IDs.
	f.next = kernel.Word(bc.Epoch) * 1000
	f.inited++
	return nil
}

func (f *fakeLock) Dispatch(t *kernel.Thread, fn string, args []kernel.Word) (kernel.Word, error) {
	switch fn {
	case "lock_alloc":
		f.next++
		f.locks[f.next] = &fakeLockState{}
		return f.next, nil
	case "lock_take":
		l, ok := f.locks[args[1]]
		if !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		for l.holder != 0 && l.holder != t.ID() {
			l.waiters = append(l.waiters, t.ID())
			if err := f.k.Block(t); err != nil {
				return 0, err
			}
			l, ok = f.locks[args[1]]
			if !ok {
				return 0, kernel.ErrInvalidDescriptor
			}
		}
		l.holder = t.ID()
		return 0, nil
	case "lock_release":
		l, ok := f.locks[args[1]]
		if !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		if l.holder != t.ID() {
			return 0, fmt.Errorf("lock: release by non-holder %d (holder %d)", t.ID(), l.holder)
		}
		l.holder = 0
		for _, w := range l.waiters {
			if err := f.k.Wakeup(t, w); err != nil {
				return 0, err
			}
		}
		l.waiters = nil
		return 0, nil
	case "lock_free":
		if _, ok := f.locks[args[0]]; !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		delete(f.locks, args[0])
		return 0, nil
	default:
		return 0, kernel.DispatchError("lock", fn)
	}
}

// fakeEvt is a global-descriptor event server: IDs are shared across
// clients, recovery needs G0/U0 through the storage component.
type fakeEvt struct {
	k    *kernel.Kernel
	next kernel.Word
	evts map[kernel.Word][]kernel.ThreadID // waiters
}

func newFakeEvt() kernel.Service { return &fakeEvt{} }

func (f *fakeEvt) Name() string { return "event" }

func (f *fakeEvt) Init(bc *kernel.BootContext) error {
	f.k = bc.Kernel
	f.evts = make(map[kernel.Word][]kernel.ThreadID)
	f.next = kernel.Word(bc.Epoch) * 1000
	return nil
}

func (f *fakeEvt) Dispatch(t *kernel.Thread, fn string, args []kernel.Word) (kernel.Word, error) {
	switch fn {
	case "evt_split":
		f.next++
		f.evts[f.next] = nil
		return f.next, nil
	case "evt_wait":
		if _, ok := f.evts[args[1]]; !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		f.evts[args[1]] = append(f.evts[args[1]], t.ID())
		if err := f.k.Block(t); err != nil {
			return 0, err
		}
		return 1, nil
	case "evt_trigger":
		waiters, ok := f.evts[args[1]]
		if !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		f.evts[args[1]] = nil
		for _, w := range waiters {
			if err := f.k.Wakeup(t, w); err != nil {
				return 0, err
			}
		}
		return kernel.Word(len(waiters)), nil
	case "evt_free":
		if _, ok := f.evts[args[1]]; !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		delete(f.evts, args[1])
		return 0, nil
	default:
		return 0, kernel.DispatchError("event", fn)
	}
}

func evtSpec() *Spec {
	return &Spec{
		Service:         "event",
		DescHasParent:   ParentSame,
		DescIsGlobal:    true,
		DescBlock:       true,
		DescHasData:     true,
		DescCloseRemove: true,
		Funcs: []*FuncSpec{
			{Name: "evt_split", RetCType: "long", RetDescID: true, RetName: "evtid",
				Params: []ParamSpec{
					{CType: "componentid_t", Name: "compid", Role: RoleDescData},
					{CType: "long", Name: "parent_evtid", Role: RoleParentDesc},
					{CType: "int", Name: "grp", Role: RoleDescData},
				}},
			{Name: "evt_wait", Params: []ParamSpec{
				{CType: "componentid_t", Name: "compid", Role: RolePlain},
				{CType: "long", Name: "evtid", Role: RoleDesc}}},
			{Name: "evt_trigger", Params: []ParamSpec{
				{CType: "componentid_t", Name: "compid", Role: RolePlain},
				{CType: "long", Name: "evtid", Role: RoleDesc}}},
			{Name: "evt_free", Params: []ParamSpec{
				{CType: "componentid_t", Name: "compid", Role: RolePlain},
				{CType: "long", Name: "evtid", Role: RoleDesc}}},
		},
		Transitions: []Transition{
			{From: "evt_split", To: "evt_wait"},
			{From: "evt_wait", To: "evt_trigger"},
			{From: "evt_trigger", To: "evt_wait"},
			{From: "evt_trigger", To: "evt_free"},
			{From: "evt_split", To: "evt_free"},
			{From: "evt_wait", To: "evt_free"},
		},
		Creation: []string{"evt_split"},
		Terminal: []string{"evt_free"},
		Blocking: []string{"evt_wait"},
		Wakeup:   []string{"evt_trigger"},
		Reset:    []string{"evt_wait", "evt_trigger"},
	}
}

// testRig assembles a system with the fake lock and event servers and one
// client.
type testRig struct {
	sys  *System
	lock kernel.ComponentID
	evt  kernel.ComponentID
	cl   *Client
}

func newRig(t *testing.T, mode RecoveryMode) *testRig {
	t.Helper()
	sys, err := NewSystem(mode)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	lock, err := sys.RegisterServer(lockSpec(), newFakeLock)
	if err != nil {
		t.Fatalf("RegisterServer(lock): %v", err)
	}
	evt, err := sys.RegisterServer(evtSpec(), newFakeEvt)
	if err != nil {
		t.Fatalf("RegisterServer(event): %v", err)
	}
	cl, err := sys.NewClient("app")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return &testRig{sys: sys, lock: lock, evt: evt, cl: cl}
}

func (r *testRig) run(t *testing.T, body func(th *kernel.Thread, st *ClientStub)) {
	t.Helper()
	st, err := r.cl.Stub(r.lock)
	if err != nil {
		t.Fatalf("Stub: %v", err)
	}
	if _, err := r.sys.Kernel().CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		body(th, st)
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := r.sys.Kernel().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestStubBasicCreateUseFree(t *testing.T) {
	r := newRig(t, OnDemand)
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		id, err := st.Call(th, "lock_alloc", kernel.Word(r.cl.ID()))
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		if _, err := st.Call(th, "lock_take", 0, id); err != nil {
			t.Errorf("take: %v", err)
		}
		if _, err := st.Call(th, "lock_release", 0, id); err != nil {
			t.Errorf("release: %v", err)
		}
		if _, err := st.Call(th, "lock_free", id); err != nil {
			t.Errorf("free: %v", err)
		}
		if st.Tracked() != 0 {
			t.Errorf("tracked = %d after free; want 0", st.Tracked())
		}
	})
}

func TestStubRejectsUnknownFunction(t *testing.T) {
	r := newRig(t, OnDemand)
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		if _, err := st.Call(th, "lock_smash", 1); !errors.Is(err, ErrUnknownFunction) {
			t.Errorf("err = %v; want ErrUnknownFunction", err)
		}
	})
}

func TestStubRejectsWrongArity(t *testing.T) {
	r := newRig(t, OnDemand)
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		if _, err := st.Call(th, "lock_take", 1); err == nil {
			t.Error("short arg list accepted")
		}
	})
}

func TestStubRejectsUntrackedLocalDescriptor(t *testing.T) {
	r := newRig(t, OnDemand)
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		if _, err := st.Call(th, "lock_take", 0, 999); !errors.Is(err, ErrUnknownDescriptor) {
			t.Errorf("err = %v; want ErrUnknownDescriptor", err)
		}
	})
}

func TestStubDetectsInvalidTransition(t *testing.T) {
	r := newRig(t, OnDemand)
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		id, err := st.Call(th, "lock_alloc", 1)
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		// Double alloc of same id impossible (server-assigned); but free
		// twice: second free hits closed/removed tracking.
		if _, err := st.Call(th, "lock_free", id); err != nil {
			t.Fatalf("free: %v", err)
		}
		if _, err := st.Call(th, "lock_free", id); !errors.Is(err, ErrUnknownDescriptor) {
			t.Errorf("double free err = %v; want ErrUnknownDescriptor", err)
		}
	})
}

func TestRecoveryAfterFaultBasic(t *testing.T) {
	r := newRig(t, OnDemand)
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		id, err := st.Call(th, "lock_alloc", 1)
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		// Fail the component; the next call must transparently µ-reboot
		// and recover the descriptor.
		if err := r.sys.Kernel().FailComponent(r.lock); err != nil {
			t.Fatalf("FailComponent: %v", err)
		}
		if _, err := st.Call(th, "lock_take", 0, id); err != nil {
			t.Errorf("take after fault: %v", err)
		}
		if _, err := st.Call(th, "lock_release", 0, id); err != nil {
			t.Errorf("release after fault: %v", err)
		}
		m := st.Metrics()
		if m.Redos == 0 {
			t.Error("no redo recorded after fault")
		}
		if m.Recoveries == 0 {
			t.Error("no recovery recorded after fault")
		}
		d, ok := st.Descriptor(DescKey{ID: id})
		if !ok {
			t.Fatal("descriptor lost after recovery")
		}
		if d.ServerID == id {
			t.Error("server ID not refreshed (fresh epoch should assign new IDs)")
		}
	})
}

func TestRecoveryRestoresHeldLock(t *testing.T) {
	r := newRig(t, OnDemand)
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		id, err := st.Call(th, "lock_alloc", 1)
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		if _, err := st.Call(th, "lock_take", 0, id); err != nil {
			t.Fatalf("take: %v", err)
		}
		if err := r.sys.Kernel().FailComponent(r.lock); err != nil {
			t.Fatalf("FailComponent: %v", err)
		}
		// Release after the fault: the stub must recover the descriptor,
		// re-acquire the lock on our behalf, then release. A naive replay
		// would make the server reject release-by-non-holder.
		if _, err := st.Call(th, "lock_release", 0, id); err != nil {
			t.Errorf("release after fault: %v", err)
		}
		if st.Metrics().HoldReplays == 0 {
			t.Error("hold not replayed during recovery")
		}
	})
}

func TestBlockedThreadDivertedAndRedone(t *testing.T) {
	r := newRig(t, OnDemand)
	k := r.sys.Kernel()
	st, err := r.cl.Stub(r.lock)
	if err != nil {
		t.Fatalf("Stub: %v", err)
	}
	var id kernel.Word
	var waitErr error
	done := false
	if _, err := k.CreateThread(nil, "setup", 5, func(th *kernel.Thread) {
		id, err = st.Call(th, "lock_alloc", 1)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		if _, err := st.Call(th, "lock_take", 0, id); err != nil {
			t.Errorf("take: %v", err)
		}
		// Let the waiter run and block, then fail + reboot the server.
		if err := k.Yield(th); err != nil {
			t.Errorf("yield: %v", err)
		}
		if err := k.FailComponent(r.lock); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		if _, err := k.Reboot(th, r.lock); err != nil {
			t.Errorf("Reboot: %v", err)
		}
		// Release so the waiter can finish (it re-contends on redo).
		if _, err := st.Call(th, "lock_release", 0, id); err != nil {
			t.Errorf("release: %v", err)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if _, err := k.CreateThread(nil, "waiter", 5, func(th *kernel.Thread) {
		_, waitErr = st.Call(th, "lock_take", 0, id)
		done = true
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if waitErr != nil {
		t.Fatalf("waiter's take = %v; want transparent recovery", waitErr)
	}
	if !done {
		t.Fatal("waiter never completed")
	}
}

func TestGlobalDescriptorRecoveredViaStorageUpcall(t *testing.T) {
	r := newRig(t, OnDemand)
	k := r.sys.Kernel()
	creator, err := r.cl.Stub(r.evt)
	if err != nil {
		t.Fatalf("Stub: %v", err)
	}
	other, err := r.sys.NewClient("other")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	otherStub, err := other.Stub(r.evt)
	if err != nil {
		t.Fatalf("Stub(other): %v", err)
	}
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		id, err := creator.Call(th, "evt_split", kernel.Word(r.cl.ID()), 0, 0)
		if err != nil {
			t.Errorf("split: %v", err)
			return
		}
		// Another component triggers the same (global) event: untracked in
		// its stub, passes through.
		if _, err := otherStub.Call(th, "evt_trigger", kernel.Word(other.ID()), id); err != nil {
			t.Errorf("trigger pre-fault: %v", err)
			return
		}
		// Fail + reboot; the creator does NOT touch the event. The other
		// component's next trigger must be recovered server-side via the
		// storage component's creator record and an upcall (G0 + U0).
		if err := k.FailComponent(r.evt); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		if _, err := k.Reboot(th, r.evt); err != nil {
			t.Errorf("Reboot: %v", err)
		}
		if _, err := otherStub.Call(th, "evt_trigger", kernel.Word(other.ID()), id); err != nil {
			t.Errorf("trigger post-fault (G0 path): %v", err)
		}
		// The creator's tracked descriptor must have been recovered by the
		// upcall, with a fresh server ID remapped in storage.
		d, ok := creator.Descriptor(DescKey{ID: id})
		if !ok {
			t.Error("creator lost descriptor")
			return
		}
		if d.ServerID == id {
			t.Error("descriptor not recreated with a fresh server ID")
		}
		class, _ := r.sys.Class(r.evt)
		if got := r.sys.Store().Resolve(class, id); got != d.ServerID {
			t.Errorf("storage resolve(%d) = %d; want %d", id, got, d.ServerID)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestParentRecoveredBeforeChild(t *testing.T) {
	r := newRig(t, OnDemand)
	k := r.sys.Kernel()
	st, err := r.cl.Stub(r.evt)
	if err != nil {
		t.Fatalf("Stub: %v", err)
	}
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		parent, err := st.Call(th, "evt_split", 1, 0, 0)
		if err != nil {
			t.Errorf("split parent: %v", err)
			return
		}
		child, err := st.Call(th, "evt_split", 1, parent, 1)
		if err != nil {
			t.Errorf("split child: %v", err)
			return
		}
		if err := k.FailComponent(r.evt); err != nil {
			t.Errorf("FailComponent: %v", err)
		}
		// Using the child forces recovery of the parent first (D1).
		if _, err := st.Call(th, "evt_trigger", 1, child); err != nil {
			t.Errorf("trigger child after fault: %v", err)
		}
		pd, ok := st.Descriptor(DescKey{ID: parent})
		if !ok {
			t.Error("parent descriptor missing")
			return
		}
		cd, _ := st.Descriptor(DescKey{ID: child})
		cur, _ := k.Epoch(r.evt)
		if pd.Epoch != cur {
			t.Errorf("parent epoch = %d; want %d (parent must be recovered first)", pd.Epoch, cur)
		}
		if cd.Parent != pd {
			t.Error("child lost its parent link")
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEagerModeRecoversAllOnReboot(t *testing.T) {
	r := newRig(t, Eager)
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		var ids []kernel.Word
		for i := 0; i < 4; i++ {
			id, err := st.Call(th, "lock_alloc", 1)
			if err != nil {
				t.Fatalf("alloc: %v", err)
			}
			ids = append(ids, id)
		}
		if err := r.sys.Kernel().FailComponent(r.lock); err != nil {
			t.Fatalf("FailComponent: %v", err)
		}
		if _, err := r.sys.Kernel().Reboot(th, r.lock); err != nil {
			t.Fatalf("Reboot: %v", err)
		}
		cur, _ := r.sys.Kernel().Epoch(r.lock)
		for _, id := range ids {
			d, ok := st.Descriptor(DescKey{ID: id})
			if !ok {
				t.Fatalf("descriptor %d lost", id)
			}
			if d.Epoch != cur {
				t.Errorf("descriptor %d epoch = %d; want %d (eager recovery)", id, d.Epoch, cur)
			}
		}
		if st.Metrics().Recoveries != 4 {
			t.Errorf("recoveries = %d; want 4", st.Metrics().Recoveries)
		}
	})
}

func TestTerminalRemovesCreatorRecord(t *testing.T) {
	r := newRig(t, OnDemand)
	k := r.sys.Kernel()
	st, err := r.cl.Stub(r.evt)
	if err != nil {
		t.Fatalf("Stub: %v", err)
	}
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		id, err := st.Call(th, "evt_split", 1, 0, 0)
		if err != nil {
			t.Errorf("split: %v", err)
			return
		}
		class, _ := r.sys.Class(r.evt)
		if _, ok := r.sys.Store().LookupCreator(class, id); !ok {
			t.Error("creator record missing after split")
		}
		if _, err := st.Call(th, "evt_free", 1, id); err != nil {
			t.Errorf("free: %v", err)
		}
		if _, ok := r.sys.Store().LookupCreator(class, id); ok {
			t.Error("creator record not removed after free")
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDoubleFaultDuringRecovery(t *testing.T) {
	r := newRig(t, OnDemand)
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		id, err := st.Call(th, "lock_alloc", 1)
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		// First fault.
		if err := r.sys.Kernel().FailComponent(r.lock); err != nil {
			t.Fatalf("FailComponent: %v", err)
		}
		// Inject a second fault the moment the recovery walk re-enters the
		// server, via the invocation hook.
		injected := false
		r.sys.Kernel().SetInvokeHook(func(ht *kernel.Thread, comp kernel.ComponentID, fn string, phase kernel.InvokePhase) {
			if comp == r.lock && fn == "lock_alloc" && phase == kernel.PhaseEntry && !injected {
				injected = true
				if err := r.sys.Kernel().FailComponent(r.lock); err != nil {
					t.Errorf("FailComponent (second): %v", err)
				}
			}
		})
		if _, err := st.Call(th, "lock_take", 0, id); err != nil {
			t.Errorf("take after double fault: %v", err)
		}
		if !injected {
			t.Error("second fault never injected")
		}
	})
}

func TestSystemRejectsUnknownMode(t *testing.T) {
	if _, err := NewSystem(RecoveryMode(99)); err == nil {
		t.Fatal("NewSystem accepted invalid mode")
	}
}

func TestClientUpcallHandlerRouting(t *testing.T) {
	r := newRig(t, OnDemand)
	r.cl.Handle("app.ping", func(t *kernel.Thread, args []kernel.Word) (kernel.Word, error) {
		return args[0] * 2, nil
	})
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		v, err := r.sys.Kernel().Upcall(th, r.cl.ID(), "app.ping", 21)
		if err != nil || v != 42 {
			t.Errorf("upcall = (%d, %v); want (42, nil)", v, err)
		}
		if _, err := r.sys.Kernel().Upcall(th, r.cl.ID(), "app.nope"); err == nil {
			t.Error("unknown upcall accepted")
		}
	})
}

func TestServerByNameAndSpecLookups(t *testing.T) {
	r := newRig(t, OnDemand)
	if id, ok := r.sys.ServerByName("lock"); !ok || id != r.lock {
		t.Fatalf("ServerByName(lock) = (%d, %v); want (%d, true)", id, ok, r.lock)
	}
	if _, ok := r.sys.ServerByName("nope"); ok {
		t.Fatal("ServerByName(nope) found something")
	}
	if sp, ok := r.sys.ServerSpec(r.evt); !ok || sp.Service != "event" {
		t.Fatalf("ServerSpec = (%v, %v)", sp, ok)
	}
	if _, ok := r.sys.Class(kernel.ComponentID(99)); ok {
		t.Fatal("Class of unknown component found")
	}
}

func TestDuplicateServerRejected(t *testing.T) {
	r := newRig(t, OnDemand)
	if _, err := r.sys.RegisterServer(lockSpec(), newFakeLock); err == nil {
		t.Fatal("duplicate server registration accepted")
	}
}

package core

import (
	"fmt"
	"sort"

	"superglue/internal/kernel"
)

// DescKey identifies a descriptor within one client's tracker: the raw
// descriptor ID, qualified by a namespace for services whose IDs are only
// unique per protection domain (RoleDescNS); NS is zero otherwise.
type DescKey struct {
	NS kernel.Word
	ID kernel.Word
}

// String implements fmt.Stringer.
func (k DescKey) String() string {
	if k.NS == 0 {
		return fmt.Sprintf("d%d", k.ID)
	}
	return fmt.Sprintf("d%d@%d", k.ID, k.NS)
}

// threadTrack is the per-thread slice of a descriptor's tracked state, used
// for hold/release pairs (e.g., which thread holds a lock) so that recovery
// re-acquires on behalf of the holder and re-contends for waiters.
type threadTrack struct {
	// HoldFn is the hold function whose return the thread has not yet
	// released, or "" when the thread holds nothing through this
	// descriptor.
	HoldFn string
	// Args are the arguments of the outstanding hold call.
	Args []kernel.Word
	// Epoch is the server epoch in which the hold was last established.
	Epoch uint64
}

// Descriptor is the client-side tracking structure for one descriptor: the
// bounded state-machine summary that replaces an unbounded operation log
// (§II-C). It records the current state, the tracked meta-data D_dr, the
// dependency links, and the arguments needed to replay the recovery walk.
type Descriptor struct {
	// Key is the client-visible identity; stable across server reboots.
	Key DescKey
	// ServerID is the ID the server currently knows the descriptor by.
	// It starts equal to Key.ID and is refreshed when a recovery replay
	// obtains a new server-assigned ID.
	ServerID kernel.Word
	// State is the shared descriptor state (a StateMachine state).
	State string
	// CreatedBy is the creation function that produced the descriptor,
	// replayed first on recovery.
	CreatedBy string
	// Data is D_dr: tracked desc_data values by parameter name.
	Data map[string]kernel.Word
	// LastArgs records the most recent argument list per interface
	// function, the bounded data recovery replays with.
	LastArgs map[string][]kernel.Word
	// Epoch is the server epoch the descriptor was last synchronized with.
	Epoch uint64
	// Parent is the descriptor this one depends on (P_dr ≠ Solo), and
	// ParentStub the client stub tracking it (which may belong to another
	// client component when P_dr = XCParent).
	Parent     *Descriptor
	ParentStub *ClientStub
	// Children are descriptors created with this one as parent.
	Children []*Descriptor
	// PerThread tracks hold state per thread.
	PerThread map[kernel.ThreadID]*threadTrack
	// Closed marks descriptors whose terminal function ran but whose
	// tracking data is retained for their children (¬Y_dr ∧ ¬C_dr).
	Closed bool

	// recovering marks a recovery walk in progress. On a multi-core
	// machine the walking thread can park mid-walk (at a µ-reboot boot
	// gate, or blocking inside a hold replay), so without an owner flag a
	// second thread could pass the epoch check, replay the walk again,
	// and clobber the recovered server identity the first walker already
	// published. Later arrivals park on recoverWaiters until the walker
	// finishes, then re-check the epoch.
	recovering     bool
	recoverWaiters []kernel.ThreadID
}

// newDescriptor builds a fresh tracking structure. dataHint and fnHint
// pre-size the Data and LastArgs maps from the interface specification
// (number of distinct desc_data names and of interface functions), so the
// maps never rehash during tracking.
func newDescriptor(key DescKey, createdBy string, epoch uint64, dataHint, fnHint int) *Descriptor {
	return &Descriptor{
		Key:       key,
		ServerID:  key.ID,
		State:     StateInitial,
		CreatedBy: createdBy,
		Data:      make(map[string]kernel.Word, dataHint),
		LastArgs:  make(map[string][]kernel.Word, fnHint),
		PerThread: make(map[kernel.ThreadID]*threadTrack),
		Epoch:     epoch,
	}
}

// recordArgs stores a copy of args as the latest invocation of fn, reusing
// the previous buffer when the arity is unchanged (the common case).
func (d *Descriptor) recordArgs(fn string, args []kernel.Word) {
	if prev, ok := d.LastArgs[fn]; ok && len(prev) == len(args) {
		copy(prev, args)
		return
	}
	cp := make([]kernel.Word, len(args))
	copy(cp, args)
	d.LastArgs[fn] = cp
}

// removeChild unlinks c from d's child list.
func (d *Descriptor) removeChild(c *Descriptor) {
	for i, got := range d.Children {
		if got == c {
			d.Children = append(d.Children[:i], d.Children[i+1:]...)
			return
		}
	}
}

// Tracker is one client component's descriptor table for one server
// interface: the per-interface tracking state a client-side stub maintains
// (the small bold black squares of Fig. 1(b)).
type Tracker struct {
	spec  *Spec
	descs map[DescKey]*Descriptor
	// One-entry lookup cache: stub calls overwhelmingly target the
	// descriptor they targeted last (the steady-state wakeup/block pair
	// hits one descriptor repeatedly), and DescKey's 16-byte map hash is
	// measurable on that path. last is non-nil only while it aliases the
	// live table entry for lastKey; Insert and Remove keep it coherent.
	lastKey DescKey
	last    *Descriptor
}

// newTracker builds an empty tracker for an interface.
func newTracker(spec *Spec) *Tracker {
	return &Tracker{spec: spec, descs: make(map[DescKey]*Descriptor)}
}

// Lookup finds a descriptor by key.
func (t *Tracker) Lookup(key DescKey) (*Descriptor, bool) {
	if t.last != nil && t.lastKey == key {
		return t.last, true
	}
	d, ok := t.descs[key]
	if ok {
		t.lastKey, t.last = key, d
	}
	return d, ok
}

// LookupByServerID finds the live descriptor currently known to the server
// by sid. Used by upcall-driven recovery, which receives server-side IDs.
func (t *Tracker) LookupByServerID(sid kernel.Word) (*Descriptor, bool) {
	// A server that leaks the same sid for two live descriptors would make
	// first-match lookup depend on map iteration order; collect and sort by
	// key so replay always resolves the same descriptor.
	var matches []*Descriptor
	for _, d := range t.descs {
		if d.ServerID == sid && !d.Closed {
			matches = append(matches, d)
		}
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Key.NS != matches[j].Key.NS {
			return matches[i].Key.NS < matches[j].Key.NS
		}
		return matches[i].Key.ID < matches[j].Key.ID
	})
	if len(matches) == 0 {
		return nil, false
	}
	return matches[0], true
}

// Insert adds a fresh descriptor; replacing a live one is a tracking bug.
func (t *Tracker) Insert(d *Descriptor) error {
	if old, ok := t.descs[d.Key]; ok && !old.Closed {
		return fmt.Errorf("core: descriptor %v already tracked", d.Key)
	}
	t.descs[d.Key] = d
	t.lastKey, t.last = d.Key, d
	return nil
}

// Remove deletes a descriptor's tracking data.
func (t *Tracker) Remove(key DescKey) {
	if t.last != nil && t.lastKey == key {
		t.last = nil
	}
	delete(t.descs, key)
}

// Live returns all non-closed descriptors, ordered by key for deterministic
// eager recovery.
func (t *Tracker) Live() []*Descriptor {
	out := make([]*Descriptor, 0, len(t.descs))
	for _, d := range t.descs {
		if !d.Closed {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.NS != out[j].Key.NS {
			return out[i].Key.NS < out[j].Key.NS
		}
		return out[i].Key.ID < out[j].Key.ID
	})
	return out
}

// Len returns the number of tracked descriptors (including closed ones whose
// metadata is retained for children).
func (t *Tracker) Len() int { return len(t.descs) }

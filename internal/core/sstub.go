package core

import (
	"errors"
	"fmt"

	"superglue/internal/kernel"
	"superglue/internal/obs"
)

// serverStub wraps a server component's implementation with the SuperGlue
// server-side generated logic. Its main duty is the G0 path: translating
// stale global-descriptor IDs through the storage component and, when the
// rebooted server does not recognize an ID (the EINVAL signal), upcalling
// the descriptor's recorded creator to rebuild it and replaying the
// invocation with the recovered ID.
type serverStub struct {
	sys   *System
	entry *serverEntry
	inner kernel.Service
}

var _ kernel.Service = (*serverStub)(nil)

func newServerStub(sys *System, entry *serverEntry, inner kernel.Service) *serverStub {
	return &serverStub{sys: sys, entry: entry, inner: inner}
}

// Name implements kernel.Service.
func (s *serverStub) Name() string { return s.inner.Name() }

// Init implements kernel.Service. The first boot runs during registration,
// before RegisterServer learns the component ID, so the stub completes the
// system's bookkeeping here — services may then resolve their own storage
// class from Init.
func (s *serverStub) Init(bc *kernel.BootContext) error {
	if s.entry.comp == 0 {
		s.entry.comp = bc.Self
		s.sys.servers[bc.Self] = s.entry
	}
	return s.inner.Init(bc)
}

// Inner exposes the wrapped implementation (tests and reflection).
func (s *serverStub) Inner() kernel.Service { return s.inner }

// Dispatch implements kernel.Service.
func (s *serverStub) Dispatch(t *kernel.Thread, fn string, args []kernel.Word) (kernel.Word, error) {
	spec := s.entry.spec
	info := s.entry.fns[fn]
	if info == nil {
		// Internal / non-IDL function: pass through untouched.
		return s.inner.Dispatch(t, fn, args)
	}
	di := info.descIdx
	if spec.DescIsGlobal && di >= 0 && di < len(args) {
		// Incoming IDs may predate a µ-reboot; resolve them first.
		args[di] = s.sys.store.Resolve(s.entry.class, args[di])
	}
	ret, err := s.inner.Dispatch(t, fn, args)
	if err == nil || !errors.Is(err, kernel.ErrInvalidDescriptor) {
		return ret, err
	}
	if !spec.DescIsGlobal || di < 0 || di >= len(args) {
		return ret, err
	}
	// G0: the server does not know this descriptor. If the storage
	// component has a creator record, upcall the creator to rebuild it
	// (U0), then replay the invocation with the recovered ID.
	staleID := args[di]
	rec, ok := s.sys.store.LookupCreator(s.entry.class, staleID)
	if !ok {
		return ret, err
	}
	tr := s.sys.kern.Tracer()
	vt0 := s.sys.kern.Now()
	steps0 := s.sys.kern.InvocationCount()
	newID, uerr := s.sys.kern.Upcall(t, rec.Creator, FnRecreate, kernel.Word(s.entry.comp), staleID)
	if uerr != nil {
		return 0, fmt.Errorf("core: %s: G0 upcall to creator %d for descriptor %d: %w",
			spec.Service, rec.Creator, staleID, uerr)
	}
	if tr != nil {
		// The full G0 span: EINVAL detection → creator lookup → recreate
		// upcall, measured in virtual time and invocation steps.
		now := s.sys.kern.Now()
		tr.RecordRecovery(obs.MechG0, int32(s.entry.comp), int32(t.ID()), fn,
			int64(now), 0, int64(now-vt0), s.sys.kern.InvocationCount()-steps0)
	}
	if newID <= 0 {
		return ret, err
	}
	args[di] = newID
	return s.inner.Dispatch(t, fn, args)
}

package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"superglue/internal/kernel"
	"superglue/internal/obs"
	"superglue/internal/storage"
)

// The fault-retry loop of a single stub call is bounded by the system's
// RecoveryPolicy (see policy.go): a well-formed system recovers in one or
// two iterations; the escalation ladder turns recovery bugs (or
// back-to-back injected faults) into a cascading reboot and finally a typed
// degradation instead of livelock.

// StubMetrics counts the work a client stub performs, feeding the
// infrastructure-overhead and recovery-cost micro-benchmarks (Fig. 6).
type StubMetrics struct {
	// Invocations is the number of interface calls made through the stub.
	Invocations uint64
	// TrackOps is the number of descriptor-tracking updates.
	TrackOps uint64
	// Recoveries is the number of descriptor recoveries performed.
	Recoveries uint64
	// WalkSteps is the total number of recovery-walk invocations.
	WalkSteps uint64
	// HoldReplays is the number of per-thread hold re-acquisitions.
	HoldReplays uint64
	// Redos is the number of times a call was replayed after a fault
	// (the goto redo of the Fig. 4 template).
	Redos uint64
	// Cascades is the number of times the escalation ladder's second rung
	// fired: a cascading reboot of the server's declared dependencies.
	Cascades uint64
	// Upcalls is the number of cross-component recovery upcalls issued.
	Upcalls uint64
	// StorageOps is the number of storage-component interactions.
	StorageOps uint64
}

// stubCounters is the live, atomically updated form of StubMetrics, so
// monitoring goroutines can snapshot a stub's counters (Metrics) while its
// thread is mid-call without racing the hot path.
type stubCounters struct {
	invocations atomic.Uint64
	trackOps    atomic.Uint64
	recoveries  atomic.Uint64
	walkSteps   atomic.Uint64
	holdReplays atomic.Uint64
	redos       atomic.Uint64
	cascades    atomic.Uint64
	upcalls     atomic.Uint64
	storageOps  atomic.Uint64
}

// ClientStub is the client side of a SuperGlue interface: the generated (or
// here, spec-interpreted) code of Fig. 4. Every invocation of the server
// flows through Call, which tracks descriptor state on the way in and out
// and runs interface-driven recovery when the server faults.
type ClientStub struct {
	sys     *System
	client  *Client
	server  kernel.ComponentID
	entry   *serverEntry
	tracker *Tracker
	metrics stubCounters
	// ref is the lock-free handle to the server's (epoch, faulty) word:
	// epoch reads on the hot path are one atomic load, no kernel lock.
	ref kernel.CompRef
	// pol is the cached effective recovery policy (system policy with the
	// interface's RecoveryBudget override applied), rebuilt only when the
	// system policy generation or the spec budget changes.
	pol       RecoveryPolicy
	polGen    uint64
	polBudget int
	// sargs is the reusable translated-argument buffer; valid on a
	// single-core machine because the dispatcher never switches threads
	// between the argument copy and the server's dispatch.
	sargs []kernel.Word
	// xcAlloc is set on multi-core machines: a cross-core invocation parks
	// the caller mid-Invoke (after the argument copy, before the dispatch),
	// so another thread sharing this stub could overwrite sargs while the
	// caller's call is in flight. Multi-core calls pay a per-call buffer.
	xcAlloc bool
}

// Server returns the server component this stub fronts.
func (s *ClientStub) Server() kernel.ComponentID { return s.server }

// Client returns the owning client component.
func (s *ClientStub) Client() *Client { return s.client }

// Spec returns the interface specification.
func (s *ClientStub) Spec() *Spec { return s.entry.spec }

// Metrics returns a snapshot of the stub's counters. Safe to call from any
// goroutine, including while the stub's thread is mid-call.
func (s *ClientStub) Metrics() StubMetrics {
	return StubMetrics{
		Invocations: s.metrics.invocations.Load(),
		TrackOps:    s.metrics.trackOps.Load(),
		Recoveries:  s.metrics.recoveries.Load(),
		WalkSteps:   s.metrics.walkSteps.Load(),
		HoldReplays: s.metrics.holdReplays.Load(),
		Redos:       s.metrics.redos.Load(),
		Cascades:    s.metrics.cascades.Load(),
		Upcalls:     s.metrics.upcalls.Load(),
		StorageOps:  s.metrics.storageOps.Load(),
	}
}

// Tracked returns the number of live descriptors the stub tracks.
func (s *ClientStub) Tracked() int { return len(s.tracker.Live()) }

// Descriptor exposes a tracked descriptor for tests and reflection.
func (s *ClientStub) Descriptor(key DescKey) (*Descriptor, bool) {
	return s.tracker.Lookup(key)
}

// policy returns the stub's effective recovery policy: the system-wide
// policy with the interface's RecoveryBudget override (if any) applied to
// the plain-retry rung. The result is cached; it is rebuilt only when
// SetRecoveryPolicy bumps the system's policy generation or the spec's
// budget changes, so the hot call path pays a compare instead of a struct
// copy per invocation.
func (s *ClientStub) policy() *RecoveryPolicy {
	if s.polGen != s.sys.polGen || s.polBudget != s.entry.spec.RecoveryBudget {
		s.rebuildPolicy()
	}
	return &s.pol
}

// rebuildPolicy recomputes the cached effective policy.
func (s *ClientStub) rebuildPolicy() {
	p := s.sys.policy
	if b := s.entry.spec.RecoveryBudget; b > 0 {
		p.MaxRetries = b
	}
	s.pol = p
	s.polGen = s.sys.polGen
	s.polBudget = s.entry.spec.RecoveryBudget
}

// degrade maps a recovery failure bubbling out of descriptor recovery to
// the policy's terminal error class: with Degrade set, an exhausted
// recovery degrades the call (typed ErrDegraded, machine keeps running)
// rather than failing the run.
func (s *ClientStub) degrade(t *kernel.Thread, fn string, attempts int, err error) error {
	if err == nil {
		return nil
	}
	if s.policy().Degrade && errors.Is(err, ErrRecoveryFailed) && !errors.Is(err, ErrDegraded) {
		err = &DegradedError{Service: s.entry.spec.Service, Fn: fn, Attempts: attempts, Cause: err}
	}
	s.traceDegraded(t, fn, err)
	return err
}

// traceDegraded records an EvDegraded event when err is (or wraps) the
// typed degradation error — the escalation ladder giving up.
func (s *ClientStub) traceDegraded(t *kernel.Thread, fn string, err error) {
	tr := s.sys.kern.Tracer()
	if tr == nil || !errors.Is(err, ErrDegraded) {
		return
	}
	var tid int32
	if t != nil {
		tid = int32(t.ID())
	}
	tr.RecordDegraded(int32(s.server), tid, fn, int64(s.sys.kern.Now()), s.epoch())
}

// epoch returns the server's current epoch: one atomic load through the
// stub's component handle, no kernel-lock round-trip.
func (s *ClientStub) epoch() uint64 {
	return s.ref.Epoch()
}

// descKeyInfo extracts the descriptor key named by a call's arguments.
func descKeyInfo(info *fnInfo, args []kernel.Word) DescKey {
	var key DescKey
	if info.descIdx >= 0 && info.descIdx < len(args) {
		key.ID = args[info.descIdx]
	}
	if info.nsIdx >= 0 && info.nsIdx < len(args) {
		key.NS = args[info.nsIdx]
	}
	return key
}

// parentKeyInfo extracts the parent descriptor key named by a call's
// arguments.
func parentKeyInfo(info *fnInfo, args []kernel.Word) (DescKey, bool) {
	pi := info.parentIdx
	if pi < 0 || pi >= len(args) || args[pi] <= 0 {
		return DescKey{}, false
	}
	key := DescKey{ID: args[pi]}
	if pni := info.parentNSIdx; pni >= 0 && pni < len(args) {
		key.NS = args[pni]
	}
	return key, true
}

// BoundCall is a client-stub call with its per-function dispatch record
// resolved once, at bind time: what generated stub code would compile to.
// The typed service clients bind each interface function at construction,
// so the per-invocation hot path skips the function-name map lookup (and
// its string hash) that ClientStub.Call pays.
type BoundCall struct {
	stub *ClientStub
	info *fnInfo
}

// Bind resolves interface function fn's dispatch record and returns a
// handle whose Call is equivalent to ClientStub.Call(t, fn, ...) minus
// the per-call name lookup.
func (s *ClientStub) Bind(fn string) (*BoundCall, error) {
	info := s.entry.fns[fn]
	if info == nil {
		return nil, fmt.Errorf("%w: %s.%s", ErrUnknownFunction, s.entry.spec.Service, fn)
	}
	return &BoundCall{stub: s, info: info}, nil
}

// Call invokes the bound interface function on the server with args.
func (b *BoundCall) Call(t *kernel.Thread, args ...kernel.Word) (kernel.Word, error) {
	return b.stub.call(t, b.info, args...)
}

// Call invokes interface function fn on the server with args, implementing
// the client-stub template of Fig. 4:
//
//	redo:
//	  cli_if_desc_update(...)      — locate + validate + on-demand recover
//	  ret = cli_if_invoke(...)     — the component invocation
//	  if fault: CSTUB_FAULT_UPDATE — µ-reboot if first observer, recover,
//	            goto redo
//	  cli_if_track(ret, ...)       — post-invocation descriptor tracking
//
// Arguments are the client-visible descriptor IDs; the stub translates them
// to the server's current IDs transparently.
func (s *ClientStub) Call(t *kernel.Thread, fn string, args ...kernel.Word) (kernel.Word, error) {
	info := s.entry.fns[fn]
	if info == nil {
		return 0, fmt.Errorf("%w: %s.%s", ErrUnknownFunction, s.entry.spec.Service, fn)
	}
	return s.call(t, info, args...)
}

// call is the shared body of Call and BoundCall.Call, keyed by the
// precompiled dispatch record.
func (s *ClientStub) call(t *kernel.Thread, info *fnInfo, args ...kernel.Word) (kernel.Word, error) {
	spec := s.entry.spec
	fn := info.f.Name
	if len(args) != len(info.f.Params) {
		return 0, fmt.Errorf("core: %s.%s takes %d args, got %d", spec.Service, fn, len(info.f.Params), len(args))
	}

	var d *Descriptor
	if info.descIdx >= 0 && !info.isCreate {
		key := descKeyInfo(info, args)
		var ok bool
		d, ok = s.tracker.Lookup(key)
		if !ok {
			if !spec.DescIsGlobal {
				return 0, fmt.Errorf("%w: %s %v", ErrUnknownDescriptor, spec.Service, key)
			}
			// Global descriptor created by another component: pass through;
			// the server-side stub recovers it via storage + upcall (G0).
			d = nil
		}
	}
	// State-machine validation: invalid transitions are detected faults.
	// Update and per-thread functions are valid in every live state.
	if d != nil {
		if d.Closed {
			return 0, fmt.Errorf("%w: %s: σ(closed, %s)", ErrInvalidTransition, spec.Service, fn)
		}
		perThread := info.isBlocking || info.isWakeup || info.isHold || info.isRelease
		if !info.isUpdate && !perThread {
			if _, ok := s.entry.sm.Next(d.State, fn); !ok {
				return 0, fmt.Errorf("%w: %s: σ(%s, %s) undefined", ErrInvalidTransition, spec.Service, d.State, fn)
			}
		}
	}
	if info.isCreate && info.descIdx >= 0 {
		key := descKeyInfo(info, args)
		if old, ok := s.tracker.Lookup(key); ok && !old.Closed {
			return 0, fmt.Errorf("%w: %s: creation of live descriptor %v", ErrInvalidTransition, spec.Service, key)
		}
	}

	var sargs []kernel.Word
	if s.xcAlloc {
		sargs = make([]kernel.Word, len(args))
	} else {
		if cap(s.sargs) < len(args) {
			s.sargs = make([]kernel.Word, len(args))
		}
		sargs = s.sargs[:len(args)]
	}

	pol := s.policy()
	for attempt := 0; ; attempt++ {
		if bo := pol.backoffFor(attempt); bo > 0 {
			// Per-attempt virtual-time backoff before the redo: a
			// repeatedly faulting server gets breathing room. A fault
			// delivered while asleep targets the server we are about to
			// retry anyway, so it is not an error here.
			_ = s.sys.kern.Sleep(t, bo)
		}
		cur := s.epoch()
		// On-demand (T1) descriptor synchronization before the invocation.
		if d != nil && d.Epoch != cur {
			if err := s.recoverDesc(t, d); err != nil {
				return 0, s.degrade(t, fn, attempt, err)
			}
			cur = s.epoch()
		}
		// D0: terminating a descriptor with recursive revocation requires
		// its children to exist in the server first.
		if d != nil && info.isTerminal && spec.DescCloseChildren {
			sp := s.beginSpan()
			if err := s.recoverChildren(t, d); err != nil {
				return 0, s.degrade(t, fn, attempt, err)
			}
			sp.endIfWork(obs.MechD0, s.server, t, fn, s.epoch())
		}

		copy(sargs, args)
		if info.descIdx >= 0 {
			if d != nil {
				sargs[info.descIdx] = d.ServerID
			} else if spec.DescIsGlobal && !info.isCreate {
				// Untracked global ID: resolve stale IDs through storage.
				resolved := s.sys.store.Resolve(s.entry.class, sargs[info.descIdx])
				if resolved != sargs[info.descIdx] {
					// G0: a stale global ID actually translated.
					if tr := s.sys.kern.Tracer(); tr != nil {
						tr.RecordRecovery(obs.MechG0, int32(s.server), int32(t.ID()), fn,
							int64(s.sys.kern.Now()), cur, 0, 0)
					}
				}
				sargs[info.descIdx] = resolved
				s.metrics.storageOps.Add(1)
			}
		}
		var parent *Descriptor
		if pkey, ok := parentKeyInfo(info, args); ok {
			if p, tracked := s.tracker.Lookup(pkey); tracked {
				parent = p
				// D1 applies to creation too: the parent must exist in the
				// (possibly rebooted) server before a child can be created
				// from it.
				if p.Epoch != cur {
					if err := s.recoverDesc(t, p); err != nil {
						return 0, s.degrade(t, fn, attempt, err)
					}
				}
				sargs[info.parentIdx] = p.ServerID
			}
		}

		s.metrics.invocations.Add(1)
		// Descriptor tracking runs as the invocation's post hook: on the
		// server's core, before the return migration, so a completed
		// operation is never parked untracked where a concurrent recovery
		// replay would miss it (see kernel.InvokePost).
		var tret kernel.Word
		var terr error
		tracked := false
		ret, err := s.sys.kern.InvokePost(t, s.server, fn, func(r kernel.Word) {
			tret, terr = s.track(t, info, d, parent, args, r)
			tracked = true
		}, sargs...)
		if err != nil {
			flt, isFault := kernel.AsFault(err)
			if !isFault {
				return ret, err
			}
			if flt.Comp != s.server {
				// A fault in the storage component surfacing through the
				// server mid-call (the server reads or writes its redundant
				// store): µ-reboot storage — its data survives (G1) — and
				// redo. Faults in any other component are not this stub's
				// to recover.
				if flt.Comp == s.sys.storeComp && !flt.Transient && attempt < pol.maxAttempts() {
					if _, rerr := s.sys.kern.EnsureRebooted(t, s.sys.storeComp, flt.Epoch); rerr != nil {
						return 0, fmt.Errorf("%w: µ-reboot of storage for %s: %v", ErrRecoveryFailed, spec.Service, rerr)
					}
					s.metrics.redos.Add(1)
					continue
				}
				return ret, err
			}
			// The fault dispatcher routes the typed fault to its recovery
			// action; the default (reboot) runs the escalation ladder:
			// plain redo, then cascading reboot of the server's declared
			// dependencies, then degradation.
			switch act := s.sys.routeFault(spec, flt); {
			case flt.Transient || act == ActionRetry:
				// Retransmission: the server's state is intact (a dropped
				// or duplicated message), or the interface declared
				// reboot-free retries for this kind — redo without a
				// µ-reboot, bounded by the total attempt budget.
				if attempt >= pol.maxAttempts() {
					eerr := pol.exhausted(spec.Service, fn, attempt, err)
					s.traceDegraded(t, fn, eerr)
					return 0, eerr
				}
			case act == ActionDegrade:
				// The interface declared this kind unrecoverable: degrade
				// immediately instead of burning the retry budget.
				eerr := pol.exhausted(spec.Service, fn, attempt, err)
				s.traceDegraded(t, fn, eerr)
				return 0, eerr
			case attempt < pol.MaxRetries:
				// CSTUB_FAULT_UPDATE: first observer restarts the server —
				// the legacy µ-reboot, or the supervision tree's group
				// restart when one is installed.
				if _, rerr := s.sys.restartServer(t, s.server, flt); rerr != nil {
					if errors.Is(rerr, ErrRestartIntensity) {
						// The supervision tree refused the restart all the
						// way to the root: typed degradation.
						eerr := pol.exhausted(spec.Service, fn, attempt, rerr)
						s.traceDegraded(t, fn, eerr)
						return 0, eerr
					}
					return 0, fmt.Errorf("%w: µ-reboot of %s: %v", ErrRecoveryFailed, spec.Service, rerr)
				}
			case attempt < pol.maxAttempts():
				// Retrying the server alone has not cleared the fault: it
				// may be re-corrupting itself from a dependency's state.
				// Reboot its declared dependencies (leaves first) and force
				// the server itself through a fresh µ-reboot.
				s.metrics.cascades.Add(1)
				if cerr := s.sys.cascadeReboot(t, s.server); cerr != nil {
					return 0, fmt.Errorf("%w: %s: %v", ErrRecoveryFailed, spec.Service, cerr)
				}
			default:
				eerr := pol.exhausted(spec.Service, fn, attempt, err)
				s.traceDegraded(t, fn, eerr)
				return 0, eerr
			}
			s.metrics.redos.Add(1)
			continue
		}
		if !tracked {
			// Defensive: a nil-error return always runs the post hook.
			return s.track(t, info, d, parent, args, ret)
		}
		return tret, terr
	}
}

// track is the post-invocation half of the stub (cli_if_track): it updates
// the descriptor tracking structures from the call's arguments and return
// value.
func (s *ClientStub) track(t *kernel.Thread, info *fnInfo, d *Descriptor, parent *Descriptor, args []kernel.Word, ret kernel.Word) (kernel.Word, error) {
	spec := s.entry.spec
	fn := info.f.Name
	s.metrics.trackOps.Add(1)

	if info.isCreate {
		cur := s.epoch()
		key := descKeyInfo(info, args)
		if info.descIdx < 0 {
			key = DescKey{ID: ret} // server-assigned identifier
		}
		nd := newDescriptor(key, fn, cur, s.entry.dataHint, s.entry.fnHint)
		if info.f.RetDescID {
			nd.ServerID = ret
		}
		for _, i := range info.dataIdxs {
			nd.Data[info.f.Params[i].Name] = args[i]
		}
		nd.recordArgs(fn, args)
		if parent != nil {
			nd.Parent = parent
			nd.ParentStub = s
			parent.Children = append(parent.Children, nd)
		}
		if err := s.tracker.Insert(nd); err != nil {
			return ret, err
		}
		if spec.DescIsGlobal {
			// G0 registration: remember the creator in the storage
			// component, through a real component invocation.
			meta := dataMeta(info.f, args)
			gargs := append([]kernel.Word{kernel.Word(s.entry.class), nd.ServerID, kernel.Word(s.client.comp)}, meta...)
			if _, err := s.sys.invokeStorage(t, storage.FnRecordCreator, gargs...); err != nil {
				return ret, fmt.Errorf("core: recording creator of %v: %w", nd.Key, err)
			}
			s.metrics.storageOps.Add(1)
		}
		return ret, nil
	}

	if d == nil {
		return ret, nil // untracked global pass-through
	}

	if info.needsArgs {
		d.recordArgs(fn, args)
	}
	for _, i := range info.dataIdxs {
		d.Data[info.f.Params[i].Name] = args[i]
	}
	if info.retAccum != "" {
		d.Data[info.retAccum] += ret
	}

	cur := s.epoch()
	switch {
	case info.isTerminal:
		return ret, s.closeDesc(t, d)
	case info.isHold:
		// Reuse the thread's tracking entry across hold/release cycles
		// (HoldFn == "" marks "holds nothing"), so the steady-state
		// hold path allocates nothing.
		tt := d.PerThread[t.ID()]
		if tt == nil {
			tt = &threadTrack{}
			d.PerThread[t.ID()] = tt
		}
		tt.HoldFn = fn
		tt.Args = append(tt.Args[:0], args...)
		tt.Epoch = cur
	case info.isRelease:
		if s.entry.hasHold {
			if tt := d.PerThread[t.ID()]; tt != nil {
				tt.HoldFn = ""
			}
		}
	case info.isBlocking || info.isWakeup:
		// Blocked-and-woken is a per-thread reset; nothing outstanding.
		// Interfaces without hold functions can have no per-thread entry,
		// so the map probe is skipped outright for them.
		if s.entry.hasHold {
			if tt := d.PerThread[t.ID()]; tt != nil {
				tt.HoldFn = ""
			}
		}
		if info.isReset {
			d.State = StateInitial
		}
	case info.isReset:
		d.State = StateInitial
	case info.isUpdate:
		// State unchanged.
	default:
		d.State = fn
	}
	d.Epoch = cur
	return ret, nil
}

// dataMeta extracts the desc_data argument values (creation metadata).
func dataMeta(f *FuncSpec, args []kernel.Word) []kernel.Word {
	var out []kernel.Word
	for i, p := range f.Params {
		if (p.Role == RoleDescData || p.Role == RoleParentDesc) && i < len(args) {
			out = append(out, args[i])
		}
	}
	return out
}

// closeDesc applies the termination bookkeeping: recursive child removal for
// C_dr, tracking-data deletion for Y_dr, and storage-record cleanup for
// global descriptors.
func (s *ClientStub) closeDesc(t *kernel.Thread, d *Descriptor) error {
	spec := s.entry.spec
	if spec.DescCloseChildren {
		for len(d.Children) > 0 {
			c := d.Children[len(d.Children)-1]
			d.Children = d.Children[:len(d.Children)-1]
			c.Parent = nil
			if err := s.closeDesc(t, c); err != nil {
				return err
			}
		}
	}
	if d.Parent != nil {
		d.Parent.removeChild(d)
		d.Parent = nil
	}
	if spec.DescIsGlobal {
		if _, err := s.sys.invokeStorage(t, storage.FnRemoveCreator,
			kernel.Word(s.entry.class), d.ServerID); err != nil {
			return fmt.Errorf("core: removing creator record of %v: %w", d.Key, err)
		}
		s.metrics.storageOps.Add(1)
	}
	d.State = StateClosed
	if spec.DescCloseChildren || spec.DescCloseRemove || spec.DescHasParent == ParentSolo {
		s.tracker.Remove(d.Key)
	} else {
		// Tracking data retained for surviving children (¬Y_dr).
		d.Closed = true
	}
	return nil
}

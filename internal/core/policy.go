package core

import (
	"errors"
	"fmt"

	"superglue/internal/kernel"
)

// ErrDegraded is the graceful-degradation error: the recovery escalation
// ladder (retry → re-reboot → cascading reboot of depended-on servers) ran
// out of budget, so the stub stops retrying and surfaces a typed error the
// application can handle — serve a 503, drop a request, fall back to a
// read-only path — while the machine keeps running. It wraps
// ErrRecoveryFailed so existing errors.Is(err, ErrRecoveryFailed) checks
// still match.
var ErrDegraded = errors.New("core: service degraded (recovery budget exhausted)")

// RecoveryPolicy configures the client stub's fault-retry escalation ladder,
// replacing the previous fixed redo bound. Attempts 0..MaxRetries-1 follow
// the Fig. 4 template (µ-reboot the server, recover descriptors, redo);
// attempts MaxRetries..MaxRetries+CascadeRetries-1 escalate to a cascading
// reboot of the server's declared dependencies (leaves first) before forcing
// the server itself through a fresh µ-reboot; once both rungs are exhausted
// the stub degrades (ErrDegraded) or fails hard (ErrRecoveryFailed).
type RecoveryPolicy struct {
	// MaxRetries bounds the plain redo rung of the ladder. Zero or
	// negative means "use the default".
	MaxRetries int
	// CascadeRetries bounds the cascading-reboot rung. Negative means
	// "use the default"; zero disables cascading.
	CascadeRetries int
	// Backoff is the virtual-time sleep before the second and subsequent
	// attempts, doubling per attempt (capped by MaxBackoff). Zero disables
	// backoff, which keeps recovery latency deterministic for the
	// virtual-time experiments; non-zero models a real system giving a
	// repeatedly faulting server breathing room.
	Backoff kernel.Time
	// MaxBackoff caps the doubled backoff. Zero with Backoff > 0 means
	// "no cap".
	MaxBackoff kernel.Time
	// Degrade selects the terminal behavior once the budget is exhausted:
	// true returns ErrDegraded (graceful degradation), false returns
	// ErrRecoveryFailed (fail the run, the pre-policy behavior).
	Degrade bool
}

// Default ladder: 12 plain redos then 4 cascading reboots — 16 attempts
// total, matching the pre-policy fixed bound — no backoff, degrade at the
// end.
const (
	defaultMaxRetries     = 12
	defaultCascadeRetries = 4
)

// DefaultRecoveryPolicy returns the policy used when none is set.
func DefaultRecoveryPolicy() RecoveryPolicy {
	return RecoveryPolicy{
		MaxRetries:     defaultMaxRetries,
		CascadeRetries: defaultCascadeRetries,
		Degrade:        true,
	}
}

// normalized fills defaulted fields. The zero value of each field means:
//
//   - MaxRetries == 0 (or negative): "use the default" (defaultMaxRetries).
//     A plain-retry rung of zero is not expressible — the first rung always
//     exists, because the first observer of a fault must µ-reboot the
//     server at least once for the system to make progress.
//   - CascadeRetries == 0: "disabled" — the ladder never escalates to a
//     cascading reboot and goes straight from plain retries to the
//     terminal rung. Only a negative value means "use the default"
//     (defaultCascadeRetries). This asymmetry with MaxRetries is
//     deliberate: disabling cascades is a meaningful configuration,
//     disabling all retries is not.
//   - Backoff == 0: "disabled" — every redo is immediate, keeping
//     recovery latency deterministic for the virtual-time experiments.
//     There is no default backoff.
//   - MaxBackoff == 0: "no cap" — with Backoff > 0 the doubling is
//     unbounded. It is not defaulted and has no effect while Backoff is
//     disabled.
//   - Degrade == false: "fail hard" — exhaustion returns
//     ErrRecoveryFailed, the pre-policy behavior. It is a plain flag, not
//     a defaulted field (DefaultRecoveryPolicy sets it true).
func (p RecoveryPolicy) normalized() RecoveryPolicy {
	if p.MaxRetries <= 0 {
		p.MaxRetries = defaultMaxRetries
	}
	if p.CascadeRetries < 0 {
		p.CascadeRetries = defaultCascadeRetries
	}
	return p
}

// maxAttempts is the total attempt budget across both rungs.
func (p RecoveryPolicy) maxAttempts() int { return p.MaxRetries + p.CascadeRetries }

// backoffFor returns the virtual-time sleep before attempt (0-based;
// attempt 0 never sleeps — the first redo is immediate, as a fault is
// normally recovered in one iteration).
func (p RecoveryPolicy) backoffFor(attempt int) kernel.Time {
	if p.Backoff <= 0 || attempt <= 0 {
		return 0
	}
	d := p.Backoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// exhausted produces the terminal error for a spent budget.
func (p RecoveryPolicy) exhausted(service, fn string, attempts int, cause error) error {
	if p.Degrade {
		return &DegradedError{Service: service, Fn: fn, Attempts: attempts, Cause: cause}
	}
	return &exhaustedError{service: service, fn: fn, attempts: attempts, cause: cause}
}

// DegradedError carries the context of a degradation decision. It matches
// both errors.Is(err, ErrDegraded) and errors.Is(err, ErrRecoveryFailed).
type DegradedError struct {
	Service  string
	Fn       string
	Attempts int
	Cause    error
}

// Error implements error.
func (e *DegradedError) Error() string {
	return fmt.Sprintf("%s: %s.%s after %d attempts: %v", ErrDegraded, e.Service, e.Fn, e.Attempts, e.Cause)
}

// Is reports identity with both sentinel errors, so callers can treat
// degradation as a (softer) recovery failure.
func (e *DegradedError) Is(target error) bool {
	return target == ErrDegraded || target == ErrRecoveryFailed
}

// Unwrap exposes the underlying fault.
func (e *DegradedError) Unwrap() error { return e.Cause }

// exhaustedError is the Degrade=false terminal: ErrRecoveryFailed only.
type exhaustedError struct {
	service  string
	fn       string
	attempts int
	cause    error
}

func (e *exhaustedError) Error() string {
	return fmt.Sprintf("%s: %s.%s after %d attempts: %v", ErrRecoveryFailed, e.service, e.fn, e.attempts, e.cause)
}

func (e *exhaustedError) Is(target error) bool { return target == ErrRecoveryFailed }

func (e *exhaustedError) Unwrap() error { return e.cause }

package core

import (
	"testing"

	"superglue/internal/kernel"
)

// fakeTree is a minimal XCParent + close-children service (an MM-shaped
// fake) exercising D0/D1 inside the core package's own tests.
type fakeTree struct {
	nodes map[DescKey]*fakeNode
}

type fakeNode struct {
	parent   DescKey
	children map[DescKey]bool
}

func newFakeTree() kernel.Service { return &fakeTree{} }

func (f *fakeTree) Name() string { return "tree" }

func (f *fakeTree) Init(bc *kernel.BootContext) error {
	f.nodes = make(map[DescKey]*fakeNode)
	return nil
}

func (f *fakeTree) Dispatch(t *kernel.Thread, fn string, args []kernel.Word) (kernel.Word, error) {
	switch fn {
	case "tr_root": // (ns, id)
		key := DescKey{NS: args[0], ID: args[1]}
		f.nodes[key] = &fakeNode{children: make(map[DescKey]bool)}
		return args[1], nil
	case "tr_child": // (pns, pid, ns, id)
		pkey := DescKey{NS: args[0], ID: args[1]}
		p, ok := f.nodes[pkey]
		if !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		key := DescKey{NS: args[2], ID: args[3]}
		f.nodes[key] = &fakeNode{parent: pkey, children: make(map[DescKey]bool)}
		p.children[key] = true
		return args[3], nil
	case "tr_del": // (ns, id) — recursive
		key := DescKey{NS: args[0], ID: args[1]}
		n, ok := f.nodes[key]
		if !ok {
			return 0, kernel.ErrInvalidDescriptor
		}
		var del func(k DescKey, nd *fakeNode)
		del = func(k DescKey, nd *fakeNode) {
			for c := range nd.children {
				if cn, ok := f.nodes[c]; ok {
					del(c, cn)
				}
			}
			delete(f.nodes, k)
		}
		del(key, n)
		return 0, nil
	default:
		return 0, kernel.DispatchError("tree", fn)
	}
}

func treeSpec() *Spec {
	return &Spec{
		Service:           "tree",
		DescHasParent:     ParentXC,
		DescCloseChildren: true,
		Funcs: []*FuncSpec{
			{Name: "tr_root", Params: []ParamSpec{
				{Name: "ns", Role: RoleDescNS},
				{Name: "id", Role: RoleDesc}}},
			{Name: "tr_child", Params: []ParamSpec{
				{Name: "pns", Role: RoleParentNS},
				{Name: "pid", Role: RoleParentDesc},
				{Name: "ns", Role: RoleDescNS},
				{Name: "id", Role: RoleDesc}}},
			{Name: "tr_del", Params: []ParamSpec{
				{Name: "ns", Role: RoleDescNS},
				{Name: "id", Role: RoleDesc}}},
		},
		Transitions: []Transition{
			{From: "tr_root", To: "tr_del"},
			{From: "tr_child", To: "tr_del"},
		},
		Creation: []string{"tr_root", "tr_child"},
		Terminal: []string{"tr_del"},
	}
}

func TestTreeSubtreeRecoveryAndRevocation(t *testing.T) {
	sys, err := NewSystem(OnDemand)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	comp, err := sys.RegisterServer(treeSpec(), newFakeTree)
	if err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	cl, err := sys.NewClient("app")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	st, err := cl.Stub(comp)
	if err != nil {
		t.Fatalf("Stub: %v", err)
	}
	self := kernel.Word(cl.ID())
	if _, err := sys.Kernel().CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		if _, err := st.Call(th, "tr_root", self, 1); err != nil {
			t.Errorf("root: %v", err)
			return
		}
		if _, err := st.Call(th, "tr_child", self, 1, self, 2); err != nil {
			t.Errorf("child: %v", err)
			return
		}
		if _, err := st.Call(th, "tr_child", self, 2, 99, 3); err != nil {
			t.Errorf("grandchild in foreign ns: %v", err)
			return
		}
		if err := sys.Kernel().FailComponent(comp); err != nil {
			t.Errorf("fail: %v", err)
		}
		// Deleting the root forces subtree recovery (D0, parents first via
		// D1) and then the recursive revocation.
		if _, err := st.Call(th, "tr_del", self, 1); err != nil {
			t.Errorf("del after fault: %v", err)
			return
		}
		if st.Tracked() != 0 {
			t.Errorf("tracked = %d; want 0 after recursive delete", st.Tracked())
		}
		m := st.Metrics()
		if m.WalkSteps < 3 {
			t.Errorf("walk steps = %d; want ≥ 3 (whole subtree rebuilt)", m.WalkSteps)
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := sys.Kernel().Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRecoverUpcallRoute(t *testing.T) {
	r := newRig(t, OnDemand)
	st, err := r.cl.Stub(r.lock)
	if err != nil {
		t.Fatalf("Stub: %v", err)
	}
	k := r.sys.Kernel()
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		id, err := st.Call(th, "lock_alloc", 1)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		if err := k.FailComponent(r.lock); err != nil {
			t.Errorf("fail: %v", err)
		}
		if _, err := k.Reboot(th, r.lock); err != nil {
			t.Errorf("reboot: %v", err)
		}
		// Route a recovery request through the upcall surface, as another
		// component's D1 recovery would.
		newID, err := k.Upcall(th, r.cl.ID(), FnRecover, kernel.Word(r.lock), 0, id)
		if err != nil {
			t.Errorf("FnRecover upcall: %v", err)
			return
		}
		d, _ := st.Descriptor(DescKey{ID: id})
		if d == nil || d.ServerID != newID {
			t.Errorf("upcall returned %d; descriptor has %v", newID, d)
		}
		// Unknown key errors.
		if _, err := k.Upcall(th, r.cl.ID(), FnRecover, kernel.Word(r.lock), 0, 9999); err == nil {
			t.Error("FnRecover for unknown descriptor accepted")
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRecreateUpcallResolvesAlreadyRemapped(t *testing.T) {
	r := newRig(t, OnDemand)
	st, err := r.cl.Stub(r.evt)
	if err != nil {
		t.Fatalf("Stub: %v", err)
	}
	k := r.sys.Kernel()
	if _, err := k.CreateThread(nil, "main", 10, func(th *kernel.Thread) {
		id, err := st.Call(th, "evt_split", 1, 0, 0)
		if err != nil {
			t.Errorf("split: %v", err)
			return
		}
		if err := k.FailComponent(r.evt); err != nil {
			t.Errorf("fail: %v", err)
		}
		// Recover through normal access first: the stale ID gets remapped.
		if _, err := st.Call(th, "evt_trigger", 1, id); err != nil {
			t.Errorf("trigger: %v", err)
			return
		}
		d, _ := st.Descriptor(DescKey{ID: id})
		// A late FnRecreate with the original (stale) server ID must
		// resolve through the remap table.
		got, err := k.Upcall(th, r.cl.ID(), FnRecreate, kernel.Word(r.evt), id)
		if err != nil {
			t.Errorf("FnRecreate: %v", err)
			return
		}
		if got != d.ServerID {
			t.Errorf("FnRecreate = %d; want current %d", got, d.ServerID)
		}
		// A completely unknown ID errors.
		if _, err := k.Upcall(th, r.cl.ID(), FnRecreate, kernel.Word(r.evt), 987654); err == nil {
			t.Error("FnRecreate for unknown id accepted")
		}
	}); err != nil {
		t.Fatalf("CreateThread: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestAccessors(t *testing.T) {
	r := newRig(t, OnDemand)
	st, err := r.cl.Stub(r.lock)
	if err != nil {
		t.Fatalf("Stub: %v", err)
	}
	if st.Server() != r.lock {
		t.Error("Server() wrong")
	}
	if st.Client() != r.cl {
		t.Error("Client() wrong")
	}
	if st.Spec().Service != "lock" {
		t.Error("Spec() wrong")
	}
	if r.sys.Mode() != OnDemand {
		t.Error("Mode() wrong")
	}
	if r.sys.Cbufs() == nil || r.sys.Store() == nil {
		t.Error("substrate accessors nil")
	}
	if r.sys.StorageComp() == 0 {
		t.Error("StorageComp() zero")
	}
	if r.cl.System() != r.sys {
		t.Error("Client.System() wrong")
	}
	if r.cl.Name() != "app" {
		t.Error("Client.Name() wrong")
	}
	svc, err := r.sys.Kernel().Service(r.lock)
	if err != nil {
		t.Fatalf("Service: %v", err)
	}
	type innerer interface{ Inner() kernel.Service }
	if svc.(innerer).Inner().(*fakeLock) == nil {
		t.Error("Inner() wrong")
	}
	if (DescKey{NS: 2, ID: 3}).String() != "d3@2" || (DescKey{ID: 4}).String() != "d4" {
		t.Error("DescKey.String wrong")
	}
	// Stub reuse: second Stub call returns the same instance.
	st2, err := r.cl.Stub(r.lock)
	if err != nil || st2 != st {
		t.Error("Stub not idempotent")
	}
	if _, err := r.cl.Stub(kernel.ComponentID(99)); err == nil {
		t.Error("Stub for unregistered server accepted")
	}
}

package core_test

import (
	"fmt"

	"superglue/internal/core"
	"superglue/internal/kernel"
	"superglue/internal/services/lock"
)

// Example shows the whole public surface in one flow: boot a system,
// register a recoverable service from its IDL, inject a transient fault,
// and observe the client stub recover it transparently.
func Example() {
	sys, err := core.NewSystem(core.OnDemand)
	if err != nil {
		fmt.Println(err)
		return
	}
	lockComp, err := lock.Register(sys) // interface defined in lock.sg
	if err != nil {
		fmt.Println(err)
		return
	}
	app, err := sys.NewClient("app")
	if err != nil {
		fmt.Println(err)
		return
	}
	locks, err := lock.NewClient(app, lockComp)
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, err := sys.Kernel().CreateThread(nil, "main", 10, func(t *kernel.Thread) {
		id, err := locks.Alloc(t)
		if err != nil {
			fmt.Println(err)
			return
		}
		if err := locks.Take(t, id); err != nil {
			fmt.Println(err)
			return
		}
		// A transient fault crashes the component (fail-stop)...
		if err := sys.Kernel().FailComponent(lockComp); err != nil {
			fmt.Println(err)
			return
		}
		// ...and the next call µ-reboots it, replays the recovery walk
		// (re-allocate, re-acquire on our behalf), and redoes the release.
		if err := locks.Release(t, id); err != nil {
			fmt.Println(err)
			return
		}
		m := locks.Stub().Metrics()
		fmt.Printf("recovered: %d µ-reboot redo, %d descriptor recovery, %d walk step\n",
			m.Redos, m.Recoveries, m.WalkSteps)
	}); err != nil {
		fmt.Println(err)
		return
	}
	if err := sys.Kernel().Run(); err != nil {
		fmt.Println(err)
	}
	// Output:
	// recovered: 1 µ-reboot redo, 1 descriptor recovery, 1 walk step
}

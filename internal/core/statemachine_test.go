package core

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// chainSpec builds a linear spec s0 → f1 → f2 → ... → fN with a creation
// function mk and terminal function rm.
func chainSpec(n int) *Spec {
	s := &Spec{
		Service:       "chain",
		DescHasParent: ParentSolo,
		Creation:      []string{"mk"},
		Terminal:      []string{"rm"},
		Funcs: []*FuncSpec{
			{Name: "mk", RetDescID: true},
			{Name: "rm", Params: []ParamSpec{{Name: "id", Role: RoleDesc}}},
		},
		Transitions: []Transition{{From: "mk", To: "rm"}},
	}
	prev := "mk"
	for i := 1; i <= n; i++ {
		fn := fmt.Sprintf("f%d", i)
		s.Funcs = append(s.Funcs, &FuncSpec{Name: fn, Params: []ParamSpec{{Name: "id", Role: RoleDesc}}})
		s.Transitions = append(s.Transitions, Transition{From: prev, To: fn})
		s.Transitions = append(s.Transitions, Transition{From: fn, To: "rm"})
		prev = fn
	}
	return s
}

func TestChainWalks(t *testing.T) {
	s := chainSpec(3)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	m, err := NewStateMachine(s)
	if err != nil {
		t.Fatalf("NewStateMachine: %v", err)
	}
	for i, want := range [][]string{{}, {"f1"}, {"f1", "f2"}, {"f1", "f2", "f3"}} {
		state := StateInitial
		if i > 0 {
			state = fmt.Sprintf("f%d", i)
		}
		walk, ok := m.Walk(state)
		if !ok {
			t.Fatalf("Walk(%s): not found", state)
		}
		if len(walk) != len(want) {
			t.Fatalf("Walk(%s) = %v; want %v", state, walk, want)
		}
		for j := range want {
			if walk[j] != want[j] {
				t.Fatalf("Walk(%s) = %v; want %v", state, walk, want)
			}
		}
	}
}

func TestRecoveryWalkPrependsCreationAndAppendsRestore(t *testing.T) {
	s := chainSpec(2)
	// Add a restore function.
	s.Funcs = append(s.Funcs, &FuncSpec{Name: "seek", Params: []ParamSpec{
		{Name: "id", Role: RoleDesc},
		{Name: "offset", Role: RoleDescData},
	}})
	s.Update = append(s.Update, "seek")
	s.Restore = append(s.Restore, "seek")
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	m, err := NewStateMachine(s)
	if err != nil {
		t.Fatalf("NewStateMachine: %v", err)
	}
	walk, err := m.RecoveryWalk("mk", "f2")
	if err != nil {
		t.Fatalf("RecoveryWalk: %v", err)
	}
	want := []string{"mk", "f1", "f2", "seek"}
	if fmt.Sprint(walk) != fmt.Sprint(want) {
		t.Fatalf("RecoveryWalk = %v; want %v", walk, want)
	}
}

func TestRecoveryWalkRejectsNonCreation(t *testing.T) {
	m, err := NewStateMachine(chainSpec(1))
	if err != nil {
		t.Fatalf("NewStateMachine: %v", err)
	}
	if _, err := m.RecoveryWalk("f1", "f1"); err == nil {
		t.Fatal("RecoveryWalk accepted non-creation function")
	}
	if _, err := m.RecoveryWalk("mk", "nope"); err == nil {
		t.Fatal("RecoveryWalk accepted unknown state")
	}
}

func TestShortestPathPrefersFewerSteps(t *testing.T) {
	// Diamond: s0 → a → b → goal and s0 → goal directly.
	s := &Spec{
		Service:       "diamond",
		DescHasParent: ParentSolo,
		Creation:      []string{"mk"},
		Terminal:      []string{"rm"},
		Funcs: []*FuncSpec{
			{Name: "mk", RetDescID: true},
			{Name: "a", Params: []ParamSpec{{Name: "id", Role: RoleDesc}}},
			{Name: "b", Params: []ParamSpec{{Name: "id", Role: RoleDesc}}},
			{Name: "goal", Params: []ParamSpec{{Name: "id", Role: RoleDesc}}},
			{Name: "rm", Params: []ParamSpec{{Name: "id", Role: RoleDesc}}},
		},
		Transitions: []Transition{
			{From: "mk", To: "a"}, {From: "a", To: "b"}, {From: "b", To: "goal"},
			{From: "mk", To: "goal"},
			{From: "mk", To: "rm"},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	m, _ := NewStateMachine(s)
	walk, ok := m.Walk("goal")
	if !ok || len(walk) != 1 || walk[0] != "goal" {
		t.Fatalf("Walk(goal) = %v; want the 1-step path", walk)
	}
}

func TestUnreachableStateRejected(t *testing.T) {
	s := chainSpec(1)
	s.Funcs = append(s.Funcs, &FuncSpec{Name: "orphan", Params: []ParamSpec{{Name: "id", Role: RoleDesc}}})
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("Validate = %v; want unreachable-state error", err)
	}
}

func TestWalksNeverIncludeBlockingFunctions(t *testing.T) {
	// goal is declared after a blocking function (Fig. 3 style); because
	// blocking functions act on per-thread state and leave the shared
	// state at s0, the recovery walk to goal goes straight from s0 and
	// never replays the blocking step (walks must not block).
	s := &Spec{
		Service:       "blocked-path",
		DescHasParent: ParentSolo,
		DescBlock:     true,
		Creation:      []string{"mk"},
		Terminal:      []string{"rm"},
		Blocking:      []string{"waitstep"},
		Funcs: []*FuncSpec{
			{Name: "mk", RetDescID: true},
			{Name: "waitstep", Params: []ParamSpec{{Name: "id", Role: RoleDesc}}},
			{Name: "goal", Params: []ParamSpec{{Name: "id", Role: RoleDesc}}},
			{Name: "rm", Params: []ParamSpec{{Name: "id", Role: RoleDesc}}},
		},
		Transitions: []Transition{
			{From: "mk", To: "waitstep"},
			{From: "waitstep", To: "goal"},
			{From: "mk", To: "rm"},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	m, err := NewStateMachine(s)
	if err != nil {
		t.Fatalf("NewStateMachine: %v", err)
	}
	walk, err := m.RecoveryWalk("mk", "goal")
	if err != nil {
		t.Fatalf("RecoveryWalk: %v", err)
	}
	for _, fn := range walk {
		if s.IsBlocking(fn) {
			t.Fatalf("recovery walk %v includes blocking function %s", walk, fn)
		}
	}
	if len(walk) != 2 || walk[0] != "mk" || walk[1] != "goal" {
		t.Fatalf("RecoveryWalk = %v; want [mk goal]", walk)
	}
}

func TestNextValidation(t *testing.T) {
	s := lockSpec()
	m, err := NewStateMachine(s)
	if err != nil {
		t.Fatalf("NewStateMachine: %v", err)
	}
	// Per-thread functions are valid in any live state.
	if _, ok := m.Next(StateInitial, "lock_take"); !ok {
		t.Error("take invalid in s0")
	}
	// Terminal via declared transition.
	if nxt, ok := m.Next(StateInitial, "lock_free"); !ok || nxt != StateClosed {
		t.Errorf("Next(s0, free) = (%s, %v); want (closed, true)", nxt, ok)
	}
	// Nothing valid from closed.
	if _, ok := m.Next(StateClosed, "lock_take"); ok {
		t.Error("transition out of closed state accepted")
	}
	// Undeclared pure transition rejected.
	if _, ok := m.Next("bogus-state", "lock_free"); ok {
		t.Error("transition from unknown state accepted")
	}
}

func TestUpdateFunctionsKeepState(t *testing.T) {
	s := chainSpec(1)
	s.Funcs = append(s.Funcs, &FuncSpec{Name: "poke", Params: []ParamSpec{{Name: "id", Role: RoleDesc}}})
	s.Update = append(s.Update, "poke")
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	m, _ := NewStateMachine(s)
	for _, st := range []string{StateInitial, "f1"} {
		nxt, ok := m.Next(st, "poke")
		if !ok || nxt != st {
			t.Errorf("Next(%s, poke) = (%s, %v); want state unchanged", st, nxt, ok)
		}
	}
}

func TestAmbiguousTransitionRejected(t *testing.T) {
	s := chainSpec(2)
	// f2 from state f1 already goes to f2; add a conflicting self-edge
	// declaration mapping (f1, f2) → elsewhere via reset semantics:
	// simplest conflict: declare f1→f1 twice with different results is not
	// expressible, so build a direct conflict through reset.
	s.Reset = append(s.Reset, "f2")
	// Now (f1, f2) maps to s0 via reset but the original transition table
	// would also record it; both declarations resolve consistently, so
	// construct a real conflict instead:
	s2 := &Spec{
		Service:       "conflict",
		DescHasParent: ParentSolo,
		Creation:      []string{"mk"},
		Funcs: []*FuncSpec{
			{Name: "mk", RetDescID: true},
			{Name: "x", Params: []ParamSpec{{Name: "id", Role: RoleDesc}}},
			{Name: "y", Params: []ParamSpec{{Name: "id", Role: RoleDesc}}},
		},
		Transitions: []Transition{
			{From: "mk", To: "x"},
			{From: "mk", To: "y"},
			{From: "x", To: "y"},
			{From: "y", To: "x"},
		},
		Reset: []string{"y"},
	}
	// (x→y) resolves to s0 because y is reset; (mk→y) also resolves to s0:
	// no conflict. Force one by making y both reset and a pure target of a
	// transition — impossible by construction. So assert these two specs
	// still validate; ambiguity is covered by construction of the σ map.
	if err := s.Validate(); err != nil {
		t.Fatalf("reset spec should validate: %v", err)
	}
	if err := s2.Validate(); err != nil {
		t.Fatalf("second spec should validate: %v", err)
	}
}

// TestWalkReachesStateProperty: for random linear chains, the recovery walk
// to any state replays exactly the prefix of functions leading there.
func TestWalkReachesStateProperty(t *testing.T) {
	prop := func(nRaw uint8, target uint8) bool {
		n := int(nRaw%8) + 1
		s := chainSpec(n)
		m, err := NewStateMachine(s)
		if err != nil {
			return false
		}
		ti := int(target) % (n + 1)
		state := StateInitial
		if ti > 0 {
			state = fmt.Sprintf("f%d", ti)
		}
		walk, err := m.RecoveryWalk("mk", state)
		if err != nil {
			return false
		}
		if len(walk) != ti+1 || walk[0] != "mk" {
			return false
		}
		// Simulate σ along the walk and check we end in the target state.
		cur := StateFaulty
		for _, fn := range walk {
			nxt, ok := m.Next(cur, fn)
			if !ok {
				return false
			}
			cur = nxt
		}
		return cur == state
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStatesListing(t *testing.T) {
	m, err := NewStateMachine(chainSpec(2))
	if err != nil {
		t.Fatalf("NewStateMachine: %v", err)
	}
	states := m.States()
	want := map[string]bool{StateInitial: true, StateFaulty: true, StateClosed: true, "f1": true, "f2": true}
	if len(states) != len(want) {
		t.Fatalf("States = %v; want %d states", states, len(want))
	}
	for _, st := range states {
		if !want[st] {
			t.Fatalf("unexpected state %q in %v", st, states)
		}
	}
}

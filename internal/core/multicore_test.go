package core

import (
	"testing"

	"superglue/internal/kernel"
)

// TestCrossCoreHoldReplay: a hold taken through a cross-core invocation
// (client thread on core 0, lock server homed on core 1) must survive a
// server fault exactly as on a single core — recovery replays the walk and
// the outstanding hold on the fresh instance, and the client's release
// completes with ownership intact. Every stub call in this test migrates
// 0 -> 1 and back, so the recovery walk itself runs through the boot gate
// and the migration-pinned (no-preempt) path.
func TestCrossCoreHoldReplay(t *testing.T) {
	sys, err := NewSystemWithCores(OnDemand, 2)
	if err != nil {
		t.Fatalf("NewSystemWithCores: %v", err)
	}
	lock, err := sys.RegisterServer(lockSpec(), newFakeLock)
	if err != nil {
		t.Fatalf("RegisterServer(lock): %v", err)
	}
	if err := sys.PlaceServer(lock, 1); err != nil {
		t.Fatalf("PlaceServer: %v", err)
	}
	cl, err := sys.NewClient("app")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	st, err := cl.Stub(lock)
	if err != nil {
		t.Fatalf("Stub: %v", err)
	}
	k := sys.Kernel()
	if _, err := k.CreateThreadOn(nil, "main", 10, 0, func(th *kernel.Thread) {
		id, err := st.Call(th, "lock_alloc", 1)
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		if _, err := st.Call(th, "lock_take", 0, id); err != nil {
			t.Fatalf("take: %v", err)
		}
		if err := k.FailComponent(lock); err != nil {
			t.Fatalf("FailComponent: %v", err)
		}
		// The release finds the failed epoch, reboots the server on its
		// home core, replays the walk plus the outstanding hold, and then
		// completes against the fresh instance.
		if _, err := st.Call(th, "lock_release", 0, id); err != nil {
			t.Fatalf("release after cross-core recovery: %v", err)
		}
		if m := st.Metrics(); m.HoldReplays < 1 {
			t.Errorf("hold replays = %d; want ≥ 1", m.HoldReplays)
		}
		if e, _ := k.Epoch(lock); e != 1 {
			t.Errorf("epoch = %d; want 1", e)
		}
	}); err != nil {
		t.Fatalf("CreateThreadOn: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if cs := k.CoreStats(); len(cs) > 1 && cs[1].Migrations == 0 {
		t.Errorf("core 1 migrations = 0; want cross-core invocations to have migrated")
	}
}

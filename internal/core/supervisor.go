package core

import (
	"errors"
	"fmt"
	"sort"

	"superglue/internal/fault"
	"superglue/internal/kernel"
)

// This file generalizes the flat RecoveryPolicy into Erlang/OTP-style
// supervision trees: server components are grouped under supervisors
// with a restart strategy (one-for-one / rest-for-one / all-for-one), a
// per-group restart-intensity budget over a virtual-time window, and
// optional health checks driving proactive µ-reboots. A group whose
// intensity is exceeded escalates to its parent supervisor; when the
// root's budget is spent the fault degrades instead of restarting — the
// supervision analogue of the escalation ladder's terminal rung.
//
// Without a supervisor installed (SetSupervisor(nil), the default) the
// stub's restart path is exactly the legacy EnsureRebooted call, so the
// pre-supervision campaigns stay byte-identical.

// ErrRestartIntensity reports that a supervision group exceeded its
// restart-intensity budget all the way up to the root: the fault is not
// restartable under the installed policy and the call degrades.
var ErrRestartIntensity = errors.New("core: supervisor restart intensity exceeded")

// RestartStrategy selects which siblings restart with a failed child.
type RestartStrategy int

// Restart strategies (OTP semantics).
const (
	// OneForOne restarts only the failed child.
	OneForOne RestartStrategy = iota + 1
	// RestForOne restarts the failed child and every child declared
	// after it, in declaration order.
	RestForOne
	// AllForOne restarts every child of the group.
	AllForOne
)

// String implements fmt.Stringer.
func (st RestartStrategy) String() string {
	switch st {
	case OneForOne:
		return "one-for-one"
	case RestForOne:
		return "rest-for-one"
	case AllForOne:
		return "all-for-one"
	default:
		return fmt.Sprintf("RestartStrategy(%d)", int(st))
	}
}

// ParseStrategy resolves a strategy from its canonical name (underscores
// accepted in place of hyphens, matching fault.ParseKind).
func ParseStrategy(s string) (RestartStrategy, bool) {
	norm := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '_' {
			c = '-'
		}
		norm[i] = c
	}
	switch string(norm) {
	case "one-for-one":
		return OneForOne, true
	case "rest-for-one":
		return RestForOne, true
	case "all-for-one":
		return AllForOne, true
	default:
		return 0, false
	}
}

// Default restart-intensity budget: 8 restarts per 10 simulated
// milliseconds of virtual time.
const (
	DefaultRestartIntensity = 8
	DefaultRestartPeriod    = kernel.Time(10000)
)

// HealthCheck probes a supervised component; a non-nil error makes the
// next RunHealthChecks pass proactively restart it (charging the group's
// intensity budget like any other restart).
type HealthCheck func(t *kernel.Thread, sys *System, comp kernel.ComponentID) error

// ChildSpec is one entry of a supervision group: either a server
// component or a nested supervisor (exactly one of the two).
type ChildSpec struct {
	// Component is the supervised server (zero when Sup is set).
	Component kernel.ComponentID
	// Sup nests a child supervision group.
	Sup *SupervisorSpec
	// Health optionally probes the component's liveness (leaf children
	// only).
	Health HealthCheck
}

// SupervisorSpec declares one supervision group. The zero Intensity and
// Period take the defaults.
type SupervisorSpec struct {
	// Name labels the group in errors and reports.
	Name string
	// Strategy selects which siblings restart with a failed child.
	Strategy RestartStrategy
	// Intensity is the restart budget per Period (<= 0: default).
	Intensity int
	// Period is the virtual-time window the budget covers (<= 0: default).
	Period kernel.Time
	// Children are the group members in declaration (start) order —
	// rest-for-one restarts later-declared children with the failed one.
	Children []ChildSpec
}

// supNode is the compiled, stateful form of one SupervisorSpec.
type supNode struct {
	spec      *SupervisorSpec
	parent    *supNode
	parentIdx int // index of this node in parent.spec.Children
	children  []*supNode
	// window holds the virtual times of restarts charged to this group
	// within the current period.
	window []kernel.Time
}

func (n *supNode) name() string {
	if n.spec.Name != "" {
		return n.spec.Name
	}
	return "supervisor"
}

func (n *supNode) intensity() int {
	if n.spec.Intensity > 0 {
		return n.spec.Intensity
	}
	return DefaultRestartIntensity
}

func (n *supNode) period() kernel.Time {
	if n.spec.Period > 0 {
		return n.spec.Period
	}
	return DefaultRestartPeriod
}

// charge prunes restarts older than the period from the window and
// admits one more if the intensity budget allows, reporting whether it
// did. A false return means the group is restarting too fast and must
// escalate.
func (n *supNode) charge(now kernel.Time) bool {
	keep := n.window[:0]
	for _, ts := range n.window {
		if now-ts < n.period() {
			keep = append(keep, ts)
		}
	}
	n.window = keep
	if len(n.window) >= n.intensity() {
		return false
	}
	n.window = append(n.window, now)
	return true
}

// comps collects every component under the subtree rooted at child index
// i, in declaration order.
func (n *supNode) comps(i int) []kernel.ComponentID {
	var out []kernel.ComponentID
	child := n.spec.Children[i]
	if child.Sup != nil {
		sub := n.children[i]
		for j := range sub.spec.Children {
			out = append(out, sub.comps(j)...)
		}
		return out
	}
	return append(out, child.Component)
}

// resetWindows clears the restart windows of the subtree rooted at child
// index i: a restarted child supervisor comes back with fresh budgets,
// like a freshly started OTP supervisor process.
func (n *supNode) resetWindows(i int) {
	if sub := n.children[i]; sub != nil {
		sub.window = sub.window[:0]
		for j := range sub.children {
			sub.resetWindows(j)
		}
	}
}

// supTree is a compiled supervision tree plus the component index the
// stub restart path uses.
type supTree struct {
	spec   *SupervisorSpec
	root   *supNode
	byComp map[kernel.ComponentID]compRefInSup
}

// compRefInSup locates a supervised component: its owning group and its
// declaration index there.
type compRefInSup struct {
	node *supNode
	idx  int
}

// SetSupervisor installs a supervision tree over the system's servers
// (nil restores the flat legacy policy). The spec is validated and
// compiled; every named component must be a registered server (or the
// storage component) and may appear at most once. Installation is safe
// at runtime: in-flight recovery keeps its per-call attempt budget and
// the next restart consults the new tree.
func (s *System) SetSupervisor(spec *SupervisorSpec) error {
	if spec == nil {
		s.sup = nil
		return nil
	}
	tree := &supTree{spec: spec, byComp: make(map[kernel.ComponentID]compRefInSup)}
	var compile func(sp *SupervisorSpec, parent *supNode, parentIdx int) (*supNode, error)
	compile = func(sp *SupervisorSpec, parent *supNode, parentIdx int) (*supNode, error) {
		switch sp.Strategy {
		case OneForOne, RestForOne, AllForOne:
		default:
			return nil, fmt.Errorf("core: supervisor %q: unknown restart strategy %d", sp.Name, int(sp.Strategy))
		}
		if len(sp.Children) == 0 {
			return nil, fmt.Errorf("core: supervisor %q has no children", sp.Name)
		}
		n := &supNode{spec: sp, parent: parent, parentIdx: parentIdx, children: make([]*supNode, len(sp.Children))}
		for i, c := range sp.Children {
			switch {
			case c.Sup != nil && c.Component != 0:
				return nil, fmt.Errorf("core: supervisor %q: child %d declares both a component and a sub-group", sp.Name, i)
			case c.Sup != nil:
				if c.Health != nil {
					return nil, fmt.Errorf("core: supervisor %q: child %d: health checks attach to leaf components only", sp.Name, i)
				}
				sub, err := compile(c.Sup, n, i)
				if err != nil {
					return nil, err
				}
				n.children[i] = sub
			case c.Component != 0:
				if _, ok := s.servers[c.Component]; !ok && c.Component != s.storeComp {
					return nil, fmt.Errorf("core: supervisor %q: component %d is not a registered server", sp.Name, c.Component)
				}
				if _, dup := tree.byComp[c.Component]; dup {
					return nil, fmt.Errorf("core: component %d appears twice in the supervision tree", c.Component)
				}
				tree.byComp[c.Component] = compRefInSup{node: n, idx: i}
			default:
				return nil, fmt.Errorf("core: supervisor %q: child %d is empty", sp.Name, i)
			}
		}
		return n, nil
	}
	root, err := compile(spec, nil, -1)
	if err != nil {
		return err
	}
	tree.root = root
	s.sup = tree
	return nil
}

// Supervisor returns the installed supervision-tree spec, or nil when
// the flat legacy policy is in effect.
func (s *System) Supervisor() *SupervisorSpec {
	if s.sup == nil {
		return nil
	}
	return s.sup.spec
}

// Servers lists the registered server components in ID order, the
// declaration order a default supervision group uses.
func (s *System) Servers() []kernel.ComponentID {
	out := make([]kernel.ComponentID, 0, len(s.servers))
	for id := range s.servers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// restartServer is the stub's restart path: without a supervisor (or for
// an unsupervised component) it is exactly the legacy idempotent
// EnsureRebooted; under supervision the restart is charged against the
// group's intensity budget, siblings restart per the group's strategy,
// and an exhausted budget escalates to the parent group — returning
// ErrRestartIntensity when the root, too, is spent.
func (s *System) restartServer(t *kernel.Thread, comp kernel.ComponentID, flt *kernel.Fault) (uint64, error) {
	sup := s.sup
	if sup == nil {
		return s.kern.EnsureRebooted(t, comp, flt.Epoch)
	}
	ref, ok := sup.byComp[comp]
	if !ok {
		return s.kern.EnsureRebooted(t, comp, flt.Epoch)
	}
	newEpoch, err := s.kern.EnsureRebooted(t, comp, flt.Epoch)
	if err != nil {
		return newEpoch, err
	}
	if newEpoch != flt.Epoch+1 {
		// Another client observed the same fault first and its restart
		// already charged the budget and ran the group action.
		return newEpoch, nil
	}
	now := s.kern.Now()
	scope, idx := ref.node, ref.idx
	for !scope.charge(now) {
		// Intensity exceeded: the group as a whole is failing. Escalate —
		// the parent treats this subtree as one failed child (restarting
		// it resets its budgets).
		if scope.parent == nil {
			scope.window = scope.window[:0]
			return newEpoch, fmt.Errorf("%w: %q: %s", ErrRestartIntensity, scope.name(), flt.Kind)
		}
		idx = scope.parentIdx
		scope = scope.parent
	}
	var restart []kernel.ComponentID
	var lo, hi int
	switch scope.spec.Strategy {
	case RestForOne:
		lo, hi = idx, len(scope.spec.Children)
	case AllForOne:
		lo, hi = 0, len(scope.spec.Children)
	default: // OneForOne
		lo, hi = idx, idx+1
	}
	for i := lo; i < hi; i++ {
		restart = append(restart, scope.comps(i)...)
		scope.resetWindows(i)
	}
	for _, c := range restart {
		if c == comp {
			continue // already rebooted above
		}
		if _, rerr := s.kern.Reboot(t, c); rerr != nil {
			return newEpoch, fmt.Errorf("core: supervisor %q restarting sibling %d: %w", scope.name(), c, rerr)
		}
	}
	return newEpoch, nil
}

// RunHealthChecks probes every supervised component that declares a
// health check and proactively restarts the failing ones through the
// supervision machinery (charging intensity budgets exactly like a
// reactive restart). It returns the number of components restarted; an
// ErrRestartIntensity from a failing component surfaces as the error.
func (s *System) RunHealthChecks(t *kernel.Thread) (int, error) {
	sup := s.sup
	if sup == nil {
		return 0, nil
	}
	restarted := 0
	var walk func(n *supNode) error
	walk = func(n *supNode) error {
		for i, c := range n.spec.Children {
			if c.Sup != nil {
				if err := walk(n.children[i]); err != nil {
					return err
				}
				continue
			}
			if c.Health == nil {
				continue
			}
			if herr := c.Health(t, s, c.Component); herr == nil {
				continue
			}
			ref, err := s.kern.Ref(c.Component)
			if err != nil {
				return err
			}
			epoch := ref.Epoch()
			// Book the probe failure as a hang: the component is alive
			// enough to answer invocations but no longer healthy.
			if err := s.kern.FailComponentAs(c.Component, fault.KindHang, fault.SevCritical); err != nil {
				return err
			}
			flt := &kernel.Fault{Comp: c.Component, Epoch: epoch,
				Kind: fault.KindHang, Severity: fault.SevCritical}
			if _, err := s.restartServer(t, c.Component, flt); err != nil {
				return err
			}
			restarted++
		}
		return nil
	}
	if err := walk(sup.root); err != nil {
		return restarted, err
	}
	return restarted, nil
}

package core

import (
	"errors"
	"testing"

	"superglue/internal/kernel"
)

// failEvery returns an invoke hook that re-fails comp at PhaseEntry on each
// of its first n invocations — a server so broken that every redo faults
// again, exercising the escalation ladder past its first rung.
func failEvery(k *kernel.Kernel, comp kernel.ComponentID, n int) kernel.InvokeHook {
	fired := 0
	return func(t *kernel.Thread, c kernel.ComponentID, fn string, phase kernel.InvokePhase) {
		if c != comp || phase != kernel.PhaseEntry || fired >= n {
			return
		}
		fired++
		_ = k.FailComponent(comp)
	}
}

// TestEscalationDegradesAfterBudget: when every retry and cascading reboot
// faults again, the stub returns a typed ErrDegraded — and the machine keeps
// running, with other servers still usable.
func TestEscalationDegradesAfterBudget(t *testing.T) {
	r := newRig(t, OnDemand)
	r.sys.SetRecoveryPolicy(RecoveryPolicy{MaxRetries: 2, CascadeRetries: 1, Degrade: true})
	k := r.sys.Kernel()
	k.SetInvokeHook(failEvery(k, r.lock, 1000))
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		_, err := st.Call(th, "lock_alloc", 1)
		if !errors.Is(err, ErrDegraded) {
			t.Fatalf("err = %v; want ErrDegraded", err)
		}
		if !errors.Is(err, ErrRecoveryFailed) {
			t.Fatalf("err = %v; degradation must also match ErrRecoveryFailed", err)
		}
		var de *DegradedError
		if !errors.As(err, &de) || de.Attempts != 3 {
			t.Fatalf("err = %#v; want *DegradedError after 3 attempts", err)
		}
		if k.Halted() {
			t.Fatal("machine halted; degradation must keep it running")
		}
		// The rest of the machine is healthy: the event server still works.
		k.SetInvokeHook(nil)
		evtStub, serr := r.cl.Stub(r.evt)
		if serr != nil {
			t.Fatalf("Stub(evt): %v", serr)
		}
		if _, serr := evtStub.Call(th, "evt_split", 1, 0, 0); serr != nil {
			t.Errorf("event server unusable after lock degradation: %v", serr)
		}
	})
}

// TestEscalationFailsHardWithoutDegrade: Degrade=false restores the
// pre-policy terminal behavior — ErrRecoveryFailed, not ErrDegraded.
func TestEscalationFailsHardWithoutDegrade(t *testing.T) {
	r := newRig(t, OnDemand)
	r.sys.SetRecoveryPolicy(RecoveryPolicy{MaxRetries: 2, CascadeRetries: 1, Degrade: false})
	k := r.sys.Kernel()
	k.SetInvokeHook(failEvery(k, r.lock, 1000))
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		_, err := st.Call(th, "lock_alloc", 1)
		if !errors.Is(err, ErrRecoveryFailed) {
			t.Fatalf("err = %v; want ErrRecoveryFailed", err)
		}
		if errors.Is(err, ErrDegraded) {
			t.Fatalf("err = %v; must not match ErrDegraded with Degrade off", err)
		}
	})
}

// TestCascadeRebootsDependencies: once plain retries are exhausted, the
// ladder's second rung µ-reboots the server's declared dependencies before
// forcing the server through a fresh reboot.
func TestCascadeRebootsDependencies(t *testing.T) {
	r := newRig(t, OnDemand)
	if err := r.sys.DeclareDependency(r.lock, r.evt); err != nil {
		t.Fatalf("DeclareDependency: %v", err)
	}
	if got := r.sys.Dependencies(r.lock); len(got) != 1 || got[0] != r.evt {
		t.Fatalf("Dependencies = %v; want [%d]", got, r.evt)
	}
	r.sys.SetRecoveryPolicy(RecoveryPolicy{MaxRetries: 2, CascadeRetries: 2, Degrade: true})
	k := r.sys.Kernel()
	// Three faults: two consumed by the plain-retry rung, the third forces
	// one cascading reboot; the fourth attempt succeeds.
	k.SetInvokeHook(failEvery(k, r.lock, 3))
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		if _, err := st.Call(th, "lock_alloc", 1); err != nil {
			t.Fatalf("alloc = %v; want success after one cascade", err)
		}
		if c := st.Metrics().Cascades; c != 1 {
			t.Errorf("cascades = %d; want 1", c)
		}
		if e, _ := k.Epoch(r.evt); e != 1 {
			t.Errorf("dependency epoch = %d; want 1 (cascading reboot must reach it)", e)
		}
		if e, _ := k.Epoch(r.lock); e != 3 {
			t.Errorf("server epoch = %d; want 3 (two retries + one cascade)", e)
		}
	})
}

// TestDependencyDeclarationValidation: both endpoints must be registered.
func TestDependencyDeclarationValidation(t *testing.T) {
	r := newRig(t, OnDemand)
	if err := r.sys.DeclareDependency(kernel.ComponentID(99), r.evt); err == nil {
		t.Fatal("unregistered `from` accepted")
	}
	if err := r.sys.DeclareDependency(r.lock, kernel.ComponentID(99)); err == nil {
		t.Fatal("unregistered `to` accepted")
	}
	// The storage component is a valid dependency target.
	if err := r.sys.DeclareDependency(r.lock, r.sys.StorageComp()); err != nil {
		t.Fatalf("storage dependency rejected: %v", err)
	}
	// Duplicates collapse.
	if err := r.sys.DeclareDependency(r.lock, r.evt); err != nil {
		t.Fatalf("DeclareDependency: %v", err)
	}
	if err := r.sys.DeclareDependency(r.lock, r.evt); err != nil {
		t.Fatalf("DeclareDependency (dup): %v", err)
	}
	if got := r.sys.Dependencies(r.lock); len(got) != 2 {
		t.Fatalf("Dependencies = %v; want exactly [store, evt]", got)
	}
}

// TestSecondFaultDuringWalk: the server fails again while the recovery walk
// replays the creation function; recoverDesc must re-reboot and restart the
// walk, and the original call still completes (recovery during recovery).
func TestSecondFaultDuringWalk(t *testing.T) {
	r := newRig(t, OnDemand)
	k := r.sys.Kernel()
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		id, err := st.Call(th, "lock_alloc", 1)
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		if err := k.FailComponent(r.lock); err != nil {
			t.Fatalf("FailComponent: %v", err)
		}
		// The walk's first step is the replayed lock_alloc: fail the server
		// again right there, once.
		k.SetInvokeHook(failEvery(k, r.lock, 1))
		if _, err := st.Call(th, "lock_take", 0, id); err != nil {
			t.Fatalf("take after mid-walk fault: %v", err)
		}
		if e, _ := k.Epoch(r.lock); e != 2 {
			t.Errorf("epoch = %d; want 2 (reboot + mid-walk re-reboot)", e)
		}
		d, ok := st.Descriptor(DescKey{ID: id})
		if !ok {
			t.Fatal("descriptor lost")
		}
		if cur, _ := k.Epoch(r.lock); d.Epoch != cur {
			t.Errorf("descriptor epoch = %d; want %d", d.Epoch, cur)
		}
	})
}

// TestFaultDuringHoldReplay: the server fails while recovery re-acquires an
// outstanding hold. The hold replay is part of the walk's all-or-nothing
// restoration, so the retry reboots and replays both — and the original
// release still completes with ownership intact.
func TestFaultDuringHoldReplay(t *testing.T) {
	r := newRig(t, OnDemand)
	k := r.sys.Kernel()
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		id, err := st.Call(th, "lock_alloc", 1)
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		if _, err := st.Call(th, "lock_take", 0, id); err != nil {
			t.Fatalf("take: %v", err)
		}
		if err := k.FailComponent(r.lock); err != nil {
			t.Fatalf("FailComponent: %v", err)
		}
		// Fail the server at the hold replay (the recovery-time lock_take),
		// once. The pre-fault take above already happened, so the hook armed
		// now only sees recovery traffic.
		injected := false
		k.SetInvokeHook(func(ht *kernel.Thread, c kernel.ComponentID, fn string, phase kernel.InvokePhase) {
			if c == r.lock && fn == "lock_take" && phase == kernel.PhaseEntry && !injected {
				injected = true
				_ = k.FailComponent(r.lock)
			}
		})
		if _, err := st.Call(th, "lock_release", 0, id); err != nil {
			t.Fatalf("release after fault during hold replay: %v", err)
		}
		if !injected {
			t.Fatal("hold-replay fault never injected")
		}
		if m := st.Metrics(); m.HoldReplays < 2 {
			t.Errorf("hold replays = %d; want ≥ 2 (the interrupted one plus the retry)", m.HoldReplays)
		}
		if e, _ := k.Epoch(r.lock); e != 2 {
			t.Errorf("epoch = %d; want 2 (reboot + hold-replay re-reboot)", e)
		}
	})
}

// TestBackoffChargesVirtualTime: with Backoff configured, redo attempts
// sleep in virtual time, doubling per attempt and capped by MaxBackoff.
func TestBackoffChargesVirtualTime(t *testing.T) {
	r := newRig(t, OnDemand)
	r.sys.SetRecoveryPolicy(RecoveryPolicy{MaxRetries: 8, Backoff: 100, Degrade: true})
	k := r.sys.Kernel()
	// Two consecutive faults: attempt 1 sleeps 100µs, attempt 2 sleeps
	// 200µs, then the call succeeds.
	k.SetInvokeHook(failEvery(k, r.lock, 2))
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		if _, err := st.Call(th, "lock_alloc", 1); err != nil {
			t.Fatalf("alloc: %v", err)
		}
		if now := k.Now(); now < 300 {
			t.Errorf("virtual time = %dµs; want ≥ 300 (100 + 200 backoff)", now)
		}
	})
}

// TestBackoffSchedule checks the doubling-with-cap arithmetic directly.
func TestBackoffSchedule(t *testing.T) {
	p := RecoveryPolicy{Backoff: 100, MaxBackoff: 300}
	want := []kernel.Time{0, 100, 200, 300, 300}
	for attempt, w := range want {
		if got := p.backoffFor(attempt); got != w {
			t.Errorf("backoffFor(%d) = %d; want %d", attempt, got, w)
		}
	}
	if got := (RecoveryPolicy{}).backoffFor(5); got != 0 {
		t.Errorf("zero policy backoffFor(5) = %d; want 0", got)
	}
}

// TestPolicyDefaults: zeroed limit fields normalize to the defaults, and
// the default ladder totals the pre-policy fixed bound of 16 attempts.
func TestPolicyDefaults(t *testing.T) {
	p := DefaultRecoveryPolicy()
	if p.maxAttempts() != 16 {
		t.Fatalf("default maxAttempts = %d; want 16", p.maxAttempts())
	}
	r := newRig(t, OnDemand)
	r.sys.SetRecoveryPolicy(RecoveryPolicy{})
	if got := r.sys.Policy(); got.MaxRetries != defaultMaxRetries || got.CascadeRetries != 0 {
		t.Fatalf("normalized policy = %+v; want MaxRetries defaulted, explicit zero cascade kept", got)
	}
	if err := (&Spec{}).Validate(); err == nil {
		t.Fatal("empty spec validated")
	}
	bad := lockSpec()
	bad.Service = "lock2"
	bad.RecoveryBudget = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative RecoveryBudget validated")
	}
}

// TestPolicyZeroFieldSemantics pins the defaults-vs-disabled meaning of
// each RecoveryPolicy field's zero value (see normalized's doc comment):
// MaxRetries zero/negative defaults; CascadeRetries zero disables and only
// negative defaults; Backoff zero disables (no default); MaxBackoff zero
// means "no cap"; Degrade false fails hard.
func TestPolicyZeroFieldSemantics(t *testing.T) {
	// MaxRetries: both zero and negative take the default.
	for _, v := range []int{0, -3} {
		if got := (RecoveryPolicy{MaxRetries: v}).normalized().MaxRetries; got != defaultMaxRetries {
			t.Errorf("MaxRetries=%d normalized to %d; want default %d", v, got, defaultMaxRetries)
		}
	}
	// CascadeRetries: zero stays zero (disabled), negative defaults.
	if got := (RecoveryPolicy{CascadeRetries: 0}).normalized().CascadeRetries; got != 0 {
		t.Errorf("CascadeRetries=0 normalized to %d; zero must mean disabled", got)
	}
	if got := (RecoveryPolicy{CascadeRetries: -1}).normalized().CascadeRetries; got != defaultCascadeRetries {
		t.Errorf("CascadeRetries=-1 normalized to %d; want default %d", got, defaultCascadeRetries)
	}
	// With cascading disabled the attempt budget is the retry rung alone.
	if got := (RecoveryPolicy{MaxRetries: 5, CascadeRetries: 0}).maxAttempts(); got != 5 {
		t.Errorf("maxAttempts with disabled cascade = %d; want 5", got)
	}
	// Backoff: zero disables — every attempt is immediate, no default kicks in.
	p := (RecoveryPolicy{Backoff: 0, MaxBackoff: 500}).normalized()
	if p.Backoff != 0 {
		t.Errorf("Backoff=0 normalized to %d; zero must mean disabled", p.Backoff)
	}
	for attempt := 0; attempt < 4; attempt++ {
		if got := p.backoffFor(attempt); got != 0 {
			t.Errorf("disabled backoffFor(%d) = %d; want 0", attempt, got)
		}
	}
	// MaxBackoff: zero means "no cap" — the doubling is unbounded.
	uncapped := RecoveryPolicy{Backoff: 100, MaxBackoff: 0}
	if got := uncapped.backoffFor(6); got != 100<<5 {
		t.Errorf("uncapped backoffFor(6) = %d; want %d", got, 100<<5)
	}
	if got := uncapped.normalized().MaxBackoff; got != 0 {
		t.Errorf("MaxBackoff=0 normalized to %d; zero must mean no cap", got)
	}
	// Degrade: the zero value fails hard (ErrRecoveryFailed, not ErrDegraded).
	hard := (RecoveryPolicy{}).exhausted("svc", "fn", 3, errors.New("cause"))
	if !errors.Is(hard, ErrRecoveryFailed) || errors.Is(hard, ErrDegraded) {
		t.Errorf("Degrade=false exhausted() = %v; want ErrRecoveryFailed only", hard)
	}
	soft := (RecoveryPolicy{Degrade: true}).exhausted("svc", "fn", 3, errors.New("cause"))
	if !errors.Is(soft, ErrDegraded) {
		t.Errorf("Degrade=true exhausted() = %v; want ErrDegraded", soft)
	}
}

// TestSpecRecoveryBudgetOverride: a per-interface RecoveryBudget overrides
// the system policy's plain-retry rung for that server's stubs only.
func TestSpecRecoveryBudgetOverride(t *testing.T) {
	r := newRig(t, OnDemand)
	r.sys.SetRecoveryPolicy(RecoveryPolicy{MaxRetries: 9, CascadeRetries: 0, Degrade: true})
	st, err := r.cl.Stub(r.lock)
	if err != nil {
		t.Fatalf("Stub: %v", err)
	}
	if got := st.policy().MaxRetries; got != 9 {
		t.Fatalf("policy.MaxRetries = %d; want system value 9", got)
	}
	st.entry.spec.RecoveryBudget = 2
	defer func() { st.entry.spec.RecoveryBudget = 0 }()
	if got := st.policy().MaxRetries; got != 2 {
		t.Fatalf("policy.MaxRetries = %d; want interface override 2", got)
	}
}

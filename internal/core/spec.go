// Package core implements the SuperGlue system model and recovery runtime:
// the descriptor-resource model DR = (B_r, D_r, G_dr, P_dr, C_dr, Y_dr,
// D_dr), explicit descriptor state machines with precomputed shortest
// recovery walks, client- and server-side interface stubs, and the
// orchestration that maps the model onto the C³ recovery mechanisms
// (R0, T0, T1, D0, D1, G0, G1, U0) as defined in §III of the paper.
//
// A Spec is the compiled form of a SuperGlue IDL file (see internal/idl for
// the parser and internal/codegen for the stub generator). The runtime in
// this package interprets Specs directly, so every experiment exercises
// IDL-derived recovery logic even when generated stubs are not in play.
package core

import (
	"errors"
	"fmt"
	"sort"

	"superglue/internal/fault"
)

// ParentKind is P_dr: whether descriptors depend on a parent descriptor, and
// whether that dependency may span client components.
type ParentKind int

// Parent dependency kinds (Table I: desc_has_parent = Solo|Parent|XCParent).
const (
	// ParentSolo means descriptors have no inter-descriptor dependencies.
	ParentSolo ParentKind = iota + 1
	// ParentSame means a creation function takes an existing descriptor of
	// the same client as the parent (e.g., POSIX accept).
	ParentSame
	// ParentXC means the parent/child relationship can span client
	// components (e.g., memory-mapping aliases).
	ParentXC
)

// String implements fmt.Stringer.
func (p ParentKind) String() string {
	switch p {
	case ParentSolo:
		return "Solo"
	case ParentSame:
		return "Parent"
	case ParentXC:
		return "XCParent"
	default:
		return fmt.Sprintf("ParentKind(%d)", int(p))
	}
}

// ParamRole classifies how an interface-function parameter participates in
// descriptor state tracking (Table I, "descriptor state tracking" rows).
type ParamRole int

// Parameter roles.
const (
	// RolePlain parameters are passed through untracked.
	RolePlain ParamRole = iota + 1
	// RoleDescData parameters are recorded in the descriptor's tracked
	// meta-data (D_dr) and replayed during recovery.
	RoleDescData
	// RoleDesc parameters carry the descriptor's identifier; the stub uses
	// them to look the descriptor up and translates stale IDs after
	// recovery. On a creation function, a RoleDesc parameter means the
	// client chooses the descriptor ID (e.g., a virtual address).
	RoleDesc
	// RoleParentDesc parameters carry the parent descriptor's identifier
	// (desc_has_parent dependencies); they are tracked like desc_data and
	// resolved against the parent's current ID during replay.
	RoleParentDesc
	// RoleDescNS parameters qualify the descriptor's namespace, for
	// services whose descriptor IDs are only unique per client component
	// (e.g., virtual addresses per protection domain in the memory
	// manager). This is a SuperGlue-IDL extension over Table I; the
	// paper's hand-written MM stubs encoded the same pairing manually.
	RoleDescNS
	// RoleParentNS parameters qualify the parent descriptor's namespace
	// (cross-component parents, P_dr = XCParent).
	RoleParentNS
)

// String implements fmt.Stringer.
func (r ParamRole) String() string {
	switch r {
	case RolePlain:
		return "plain"
	case RoleDescData:
		return "desc_data"
	case RoleDesc:
		return "desc"
	case RoleParentDesc:
		return "parent_desc"
	case RoleDescNS:
		return "desc_ns"
	case RoleParentNS:
		return "parent_ns"
	default:
		return fmt.Sprintf("ParamRole(%d)", int(r))
	}
}

// ParamSpec describes one parameter of an interface function.
type ParamSpec struct {
	// CType is the declared C type (presentation and codegen only).
	CType string
	// Name is the parameter name.
	Name string
	// Role is the tracking role.
	Role ParamRole
}

// FuncSpec describes one function of a server component's interface
// (an element of I_dr).
type FuncSpec struct {
	// Name is the interface function name.
	Name string
	// RetCType is the declared C return type.
	RetCType string
	// RetDescID marks functions whose return value is a (new) descriptor
	// identifier, tracked via desc_data_retval.
	RetDescID bool
	// RetName is the tracked name of the returned value (for codegen).
	RetName string
	// RetAccum, when non-empty, names a desc_data field the return value
	// is added to (desc_data_retval_acc): the file-offset tracking of
	// §II-C, where read/write return values advance the tracked offset.
	RetAccum string
	// Params are the function's parameters in declaration order.
	Params []ParamSpec
}

// DescIdx returns the index of the RoleDesc parameter, or -1.
func (f *FuncSpec) DescIdx() int {
	for i, p := range f.Params {
		if p.Role == RoleDesc {
			return i
		}
	}
	return -1
}

// ParentIdx returns the index of the RoleParentDesc parameter, or -1.
func (f *FuncSpec) ParentIdx() int {
	for i, p := range f.Params {
		if p.Role == RoleParentDesc {
			return i
		}
	}
	return -1
}

// NSIdx returns the index of the RoleDescNS parameter, or -1.
func (f *FuncSpec) NSIdx() int {
	for i, p := range f.Params {
		if p.Role == RoleDescNS {
			return i
		}
	}
	return -1
}

// ParentNSIdx returns the index of the RoleParentNS parameter, or -1.
func (f *FuncSpec) ParentNSIdx() int {
	for i, p := range f.Params {
		if p.Role == RoleParentNS {
			return i
		}
	}
	return -1
}

// Transition is one sm_transition(From, To) declaration: after From has been
// applied to a descriptor, To is a valid next function.
type Transition struct {
	From string
	To   string
}

// HoldPair is one sm_hold(Hold, Release) declaration: Hold is a blocking
// function whose successful return means the calling thread holds the
// resource until it calls Release (a lock's take/release pair). Hold state
// is tracked per thread, so recovery re-acquires the resource on behalf of
// the thread that actually held it — and re-contends for threads that were
// merely waiting — reproducing §II-C's "recreating, acquiring, or contending
// locks".
type HoldPair struct {
	Hold    string
	Release string
}

// Spec is the compiled interface specification of one server component: the
// descriptor-resource model plus the descriptor state machine, as declared
// in a SuperGlue IDL file.
type Spec struct {
	// Service is the server component's name.
	Service string

	// Descriptor-resource model (Equation 1 of the paper).

	// DescHasParent is P_dr.
	DescHasParent ParentKind
	// DescCloseChildren is C_dr: terminating a descriptor destroys its
	// whole subtree (recursive revocation).
	DescCloseChildren bool
	// DescCloseRemove is Y_dr: terminating a descriptor deletes the stub's
	// tracking data for it.
	DescCloseRemove bool
	// DescIsGlobal is G_dr: descriptors are globally addressable across
	// client components.
	DescIsGlobal bool
	// DescBlock is B_r: threads can block inside the server.
	DescBlock bool
	// DescHasData is D_dr: descriptors carry tracked meta-data.
	DescHasData bool
	// RescHasData is D_r: the resource carries bulk data that must be
	// redundantly stored in the storage component (mechanism G1).
	RescHasData bool

	// RecoveryBudget, when positive, overrides the system policy's
	// MaxRetries for this interface: how many plain redos a stub call may
	// spend on this server before escalating to a cascading reboot. Zero
	// means "use the system policy"; negative is invalid.
	RecoveryBudget int

	// Descriptor state machine (Equation 2).

	// Funcs is I_dr, the interface's functions.
	Funcs []*FuncSpec
	// Transitions declares σ.
	Transitions []Transition
	// Creation is I^create: functions returning a new descriptor in s0.
	Creation []string
	// Terminal is I^terminate.
	Terminal []string
	// Blocking is I^block.
	Blocking []string
	// Wakeup is I^wakeup.
	Wakeup []string

	// IDL extensions beyond Table I (see DESIGN.md §5). These make state
	// collapse explicit where the paper's per-function implicit states
	// would force recovery to replay data operations.

	// Update lists functions that read or mutate the resource without
	// changing the descriptor's state (sm_update): valid in any live
	// state, never part of a recovery walk (e.g., fs_read/fs_write, whose
	// effects are recovered through the storage component instead).
	Update []string
	// Reset lists functions that return the descriptor to s0 (sm_reset),
	// such as a lock release or an event wait completing.
	Reset []string
	// Restore lists functions replayed after the recovery walk to push
	// tracked descriptor meta-data back into the server (sm_restore), the
	// "open and lseek" pattern of §II-C.
	Restore []string
	// Holds lists hold/release pairs tracked per thread (sm_hold).
	Holds []HoldPair

	// FaultActions maps a fault-taxonomy kind name (canonical hyphenated
	// form, e.g. "storage-crash") to the recovery action the interface
	// declares for it (sm_fault): "reboot" (the full escalation ladder,
	// the default), "retry" (redo without a µ-reboot), or "degrade"
	// (immediate typed degradation). Kinds absent from the map take the
	// dispatcher's per-kind default.
	FaultActions map[string]string
}

// Func looks up a function spec by name.
func (s *Spec) Func(name string) *FuncSpec {
	for _, f := range s.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

func contains(set []string, name string) bool {
	for _, s := range set {
		if s == name {
			return true
		}
	}
	return false
}

// IsCreation reports whether fn ∈ I^create.
func (s *Spec) IsCreation(fn string) bool { return contains(s.Creation, fn) }

// IsTerminal reports whether fn ∈ I^terminate.
func (s *Spec) IsTerminal(fn string) bool { return contains(s.Terminal, fn) }

// IsBlocking reports whether fn ∈ I^block.
func (s *Spec) IsBlocking(fn string) bool { return contains(s.Blocking, fn) }

// IsWakeup reports whether fn ∈ I^wakeup.
func (s *Spec) IsWakeup(fn string) bool { return contains(s.Wakeup, fn) }

// IsUpdate reports whether fn was declared sm_update.
func (s *Spec) IsUpdate(fn string) bool { return contains(s.Update, fn) }

// IsReset reports whether fn was declared sm_reset.
func (s *Spec) IsReset(fn string) bool { return contains(s.Reset, fn) }

// IsRestore reports whether fn was declared sm_restore.
func (s *Spec) IsRestore(fn string) bool { return contains(s.Restore, fn) }

// HoldFn returns the hold pair in which fn is the hold side, if any.
func (s *Spec) HoldFn(fn string) (HoldPair, bool) {
	for _, h := range s.Holds {
		if h.Hold == fn {
			return h, true
		}
	}
	return HoldPair{}, false
}

// ReleaseFn returns the hold pair in which fn is the release side, if any.
func (s *Spec) ReleaseFn(fn string) (HoldPair, bool) {
	for _, h := range s.Holds {
		if h.Release == fn {
			return h, true
		}
	}
	return HoldPair{}, false
}

// IsPerThread reports whether fn's effect is tracked per thread rather than
// on the shared descriptor state: blocking functions, wakeup functions, and
// both sides of hold pairs.
func (s *Spec) IsPerThread(fn string) bool {
	if s.IsBlocking(fn) || s.IsWakeup(fn) {
		return true
	}
	if _, ok := s.HoldFn(fn); ok {
		return true
	}
	_, ok := s.ReleaseFn(fn)
	return ok
}

// IsPure reports whether fn is a plain state-transition function: its
// application moves the shared descriptor state to a state named after it,
// and recovery walks may replay it. Creation, terminal, update, reset, and
// per-thread functions are not pure.
func (s *Spec) IsPure(fn string) bool {
	return !s.IsCreation(fn) && !s.IsTerminal(fn) && !s.IsUpdate(fn) &&
		!s.IsReset(fn) && !s.IsPerThread(fn)
}

// Mechanism identifies one of the paper's recovery mechanisms (§III-C).
type Mechanism int

// Recovery mechanisms.
const (
	// MechR0 is basic state-machine recovery.
	MechR0 Mechanism = iota + 1
	// MechT0 is eager recovery (wake blocked threads at fault time).
	MechT0
	// MechT1 is on-demand recovery at the accessing thread's priority.
	MechT1
	// MechD0 is recovery of children before termination.
	MechD0
	// MechD1 is root-first recovery of parent dependencies.
	MechD1
	// MechG0 is global-descriptor recovery through the storage component.
	MechG0
	// MechG1 is resource-data recovery through the storage component.
	MechG1
	// MechU0 is recovery using upcalls into client components.
	MechU0
)

// String implements fmt.Stringer.
func (m Mechanism) String() string {
	switch m {
	case MechR0:
		return "R0"
	case MechT0:
		return "T0"
	case MechT1:
		return "T1"
	case MechD0:
		return "D0"
	case MechD1:
		return "D1"
	case MechG0:
		return "G0"
	case MechG1:
		return "G1"
	case MechU0:
		return "U0"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// Mechanisms derives, from the descriptor-resource model, the set of
// recovery mechanisms the service needs — the mapping of §III-C. This is
// what the paper's Fig. 6(b) commentary appeals to when it correlates
// recovery cost with the number of mechanisms involved.
func (s *Spec) Mechanisms() []Mechanism {
	out := []Mechanism{MechR0, MechT1} // base + on-demand, always present
	if s.DescBlock {
		out = append(out, MechT0)
	}
	if s.DescCloseChildren {
		out = append(out, MechD0)
	}
	if s.DescHasParent != ParentSolo {
		out = append(out, MechD1)
	}
	if s.DescIsGlobal {
		out = append(out, MechG0, MechU0)
	}
	if s.RescHasData {
		out = append(out, MechG1)
	}
	return out
}

// HasMechanism reports whether the service's model requires mechanism m.
func (s *Spec) HasMechanism(m Mechanism) bool {
	for _, got := range s.Mechanisms() {
		if got == m {
			return true
		}
	}
	return false
}

// ErrInvalidSpec wraps all specification validation failures.
var ErrInvalidSpec = errors.New("core: invalid interface specification")

// Validate checks the internal consistency rules of the model:
//
//   - every declared set member and transition endpoint is a known function;
//   - no sm_* set declares the same function twice, no sm_transition pair is
//     declared twice, and no hold function appears in two sm_hold pairs
//     (duplicates silently shadow each other in the compiled machine —
//     promoted from speclint findings to hard invariants);
//   - at least one creation function exists;
//   - B_r holds iff I^block is non-empty (§III-B: I^block ≠ ∅ ↔ B_r);
//   - C_dr implies P_dr ≠ Solo, and Y_dr implies ¬C_dr with P_dr ≠ Solo per
//     the model's definition (for Solo interfaces Y_dr is implied and need
//     not be declared);
//   - non-creation functions carry a RoleDesc parameter so the stub can
//     locate the descriptor;
//   - parent kinds other than Solo require a RoleParentDesc parameter on a
//     creation function;
//   - every function is reachable from s0 in the state machine (checked by
//     NewStateMachine).
func (s *Spec) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s: %s", ErrInvalidSpec, s.Service, fmt.Sprintf(format, args...))
	}
	if s.Service == "" {
		return fail("empty service name")
	}
	if len(s.Funcs) == 0 {
		return fail("no interface functions")
	}
	if s.RecoveryBudget < 0 {
		return fail("negative recovery budget")
	}
	seen := make(map[string]bool, len(s.Funcs))
	for _, f := range s.Funcs {
		if f == nil || f.Name == "" {
			return fail("unnamed interface function")
		}
		if seen[f.Name] {
			return fail("duplicate function %s", f.Name)
		}
		seen[f.Name] = true
		descs, parents, nss, pnss := 0, 0, 0, 0
		for _, p := range f.Params {
			switch p.Role {
			case RoleDesc:
				descs++
			case RoleParentDesc:
				parents++
			case RoleDescNS:
				nss++
			case RoleParentNS:
				pnss++
			case RolePlain, RoleDescData:
			default:
				return fail("%s: parameter %s has unknown role", f.Name, p.Name)
			}
		}
		if descs > 1 || parents > 1 || nss > 1 || pnss > 1 {
			return fail("%s: duplicate desc/parent_desc/desc_ns/parent_ns parameter", f.Name)
		}
		if pnss == 1 && parents == 0 {
			return fail("%s: parent_ns without parent_desc", f.Name)
		}
	}
	for _, set := range []struct {
		name string
		fns  []string
	}{
		{"sm_creation", s.Creation},
		{"sm_terminal", s.Terminal},
		{"sm_block", s.Blocking},
		{"sm_wakeup", s.Wakeup},
		{"sm_update", s.Update},
		{"sm_reset", s.Reset},
		{"sm_restore", s.Restore},
	} {
		inSet := make(map[string]bool, len(set.fns))
		for _, fn := range set.fns {
			if !seen[fn] {
				return fail("%s names unknown function %s", set.name, fn)
			}
			if inSet[fn] {
				return fail("duplicate %s(%s) declaration", set.name, fn)
			}
			inSet[fn] = true
		}
	}
	for _, fn := range append(append([]string{}, s.Update...), s.Reset...) {
		if s.IsCreation(fn) || s.IsTerminal(fn) {
			return fail("%s cannot be both update/reset and creation/terminal", fn)
		}
	}
	seenTr := make(map[Transition]bool, len(s.Transitions))
	for _, tr := range s.Transitions {
		if !seen[tr.From] || !seen[tr.To] {
			return fail("sm_transition(%s, %s) names an unknown function", tr.From, tr.To)
		}
		if seenTr[tr] {
			return fail("duplicate sm_transition(%s, %s) declaration", tr.From, tr.To)
		}
		seenTr[tr] = true
		if s.IsTerminal(tr.From) {
			return fail("sm_transition from terminal function %s", tr.From)
		}
		if s.IsUpdate(tr.From) {
			return fail("sm_transition from update function %s (update functions do not change state)", tr.From)
		}
	}
	seenHold := make(map[string]bool, len(s.Holds))
	for _, h := range s.Holds {
		if !seen[h.Hold] || !seen[h.Release] {
			return fail("sm_hold(%s, %s) names an unknown function", h.Hold, h.Release)
		}
		if seenHold[h.Hold] {
			return fail("duplicate sm_hold for hold function %s", h.Hold)
		}
		seenHold[h.Hold] = true
		if !s.IsBlocking(h.Hold) {
			return fail("sm_hold: %s must be declared sm_block", h.Hold)
		}
	}
	for _, fn := range s.Restore {
		f := s.Func(fn)
		for _, p := range f.Params {
			switch p.Role {
			case RoleDesc, RoleDescNS, RoleDescData:
			default:
				return fail("sm_restore(%s): parameter %s is %v; restore functions may only take desc, desc_ns, and desc_data parameters", fn, p.Name, p.Role)
			}
		}
	}
	if len(s.Creation) == 0 {
		return fail("no creation function (sm_creation)")
	}
	if s.DescBlock != (len(s.Blocking) > 0) {
		return fail("desc_block=%v inconsistent with %d sm_block functions (I^block ≠ ∅ ↔ B_r)",
			s.DescBlock, len(s.Blocking))
	}
	if s.DescCloseChildren && s.DescHasParent == ParentSolo {
		return fail("desc_close_children requires desc_has_parent ≠ Solo")
	}
	if s.DescCloseRemove && s.DescCloseChildren {
		return fail("desc_close_remove (Y_dr) requires ¬C_dr")
	}
	switch s.DescHasParent {
	case ParentSolo:
	case ParentSame, ParentXC:
		found := false
		for _, cfn := range s.Creation {
			if f := s.Func(cfn); f != nil && f.ParentIdx() >= 0 {
				found = true
			}
		}
		if !found {
			return fail("desc_has_parent=%v but no creation function takes a parent_desc", s.DescHasParent)
		}
	default:
		return fail("desc_has_parent not specified")
	}
	for _, f := range s.Funcs {
		if s.IsCreation(f.Name) {
			continue
		}
		if f.DescIdx() < 0 {
			return fail("%s: non-creation function lacks a desc parameter", f.Name)
		}
	}
	for _, cfn := range s.Creation {
		f := s.Func(cfn)
		if !f.RetDescID && f.DescIdx() < 0 {
			return fail("%s: creation function neither returns nor takes a descriptor id", cfn)
		}
	}
	faultKinds := make([]string, 0, len(s.FaultActions))
	for kind := range s.FaultActions {
		faultKinds = append(faultKinds, kind)
	}
	sort.Strings(faultKinds)
	for _, kind := range faultKinds {
		if k, ok := fault.ParseKind(kind); !ok || k == fault.KindUnknown {
			return fail("sm_fault names unknown fault kind %q", kind)
		}
		switch action := s.FaultActions[kind]; action {
		case "reboot", "retry", "degrade":
		default:
			return fail("sm_fault(%s, %s): action must be reboot, retry, or degrade", kind, action)
		}
	}
	// The state machine itself validates reachability.
	if _, err := NewStateMachine(s); err != nil {
		return err
	}
	return nil
}

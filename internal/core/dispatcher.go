package core

import (
	"superglue/internal/fault"
	"superglue/internal/kernel"
)

// This file is the central fault dispatcher: every fault a client stub
// catches is classified as a fault.Event and routed — by registered
// handler, then by the interface's sm_fault declarations, then by the
// kind's built-in default — to a recovery action, replacing the implicit
// "any fault ⇒ reboot" path with per-kind policy.

// FaultAction is the recovery action the dispatcher selects for a fault.
type FaultAction int

// Recovery actions.
const (
	// ActionDefault (the zero value) defers to the next routing layer:
	// a handler returning it falls through to the interface's sm_fault
	// declaration, which falls through to the kind's built-in default.
	ActionDefault FaultAction = iota
	// ActionReboot runs the full escalation ladder: µ-reboot the server,
	// recover descriptors, redo; escalate to a cascading reboot and
	// finally to degradation when the budget runs out.
	ActionReboot
	// ActionRetry redoes the invocation without a µ-reboot — the
	// retransmission path for transient faults that left the server's
	// state intact (message loss/duplication).
	ActionRetry
	// ActionDegrade skips the ladder and degrades the call immediately
	// (typed ErrDegraded), for faults the interface declares unrecoverable.
	ActionDegrade
)

// String implements fmt.Stringer.
func (a FaultAction) String() string {
	switch a {
	case ActionDefault:
		return "default"
	case ActionReboot:
		return "reboot"
	case ActionRetry:
		return "retry"
	case ActionDegrade:
		return "degrade"
	default:
		return "FaultAction(?)"
	}
}

// ParseFaultAction resolves an sm_fault action name.
func ParseFaultAction(s string) (FaultAction, bool) {
	switch s {
	case "reboot":
		return ActionReboot, true
	case "retry":
		return ActionRetry, true
	case "degrade":
		return ActionDegrade, true
	default:
		return ActionDefault, false
	}
}

// FaultHandler is a runtime-registered per-kind recovery handler. It
// observes the typed fault event and picks the recovery action;
// returning ActionDefault defers to the interface's sm_fault declaration
// and the kind's built-in default.
type FaultHandler func(ev fault.Event) FaultAction

// HandleFault registers (or, with nil, removes) the runtime handler for
// one fault kind. Handlers run before interface declarations, so a
// deployment can override per-interface policy without editing specs.
// Call before threads run; the simulator is single-core, so there is no
// racing stub call.
func (s *System) HandleFault(kind fault.Kind, h FaultHandler) {
	if s.faultHandlers == nil {
		s.faultHandlers = make(map[fault.Kind]FaultHandler)
	}
	if h == nil {
		delete(s.faultHandlers, kind)
		return
	}
	s.faultHandlers[kind] = h
}

// routeFault selects the recovery action for a caught fault: registered
// handler first, then the interface's sm_fault declaration, then the
// kind's built-in default (transient kinds retransmit, everything else
// takes the reboot ladder — the pre-taxonomy behavior).
func (s *System) routeFault(spec *Spec, flt *kernel.Fault) FaultAction {
	if h := s.faultHandlers[flt.Kind]; h != nil {
		if act := h(flt.Event()); act != ActionDefault {
			return act
		}
	}
	if spec != nil && flt.Kind != fault.KindUnknown {
		if name, ok := spec.FaultActions[flt.Kind.String()]; ok {
			if act, valid := ParseFaultAction(name); valid {
				return act
			}
		}
	}
	if flt.Kind.Transient() {
		return ActionRetry
	}
	return ActionReboot
}

package core

import (
	"errors"
	"testing"

	"superglue/internal/kernel"
)

func TestParseStrategy(t *testing.T) {
	cases := []struct {
		in   string
		want RestartStrategy
		ok   bool
	}{
		{"one-for-one", OneForOne, true},
		{"rest-for-one", RestForOne, true},
		{"all-for-one", AllForOne, true},
		{"one_for_one", OneForOne, true}, // underscores accepted
		{"all_for_one", AllForOne, true},
		{"two-for-one", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseStrategy(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
	for _, st := range []RestartStrategy{OneForOne, RestForOne, AllForOne} {
		back, ok := ParseStrategy(st.String())
		if !ok || back != st {
			t.Errorf("ParseStrategy(%q) = %v, %v; want round-trip", st.String(), back, ok)
		}
	}
}

func TestSetSupervisorValidation(t *testing.T) {
	r := newRig(t, OnDemand)
	bad := []struct {
		name string
		spec *SupervisorSpec
	}{
		{"unknown strategy", &SupervisorSpec{Children: []ChildSpec{{Component: 0}}}},
		{"no children", &SupervisorSpec{Strategy: OneForOne}},
		{"empty child", &SupervisorSpec{Strategy: OneForOne, Children: []ChildSpec{{}}}},
		{"component and sub-group", &SupervisorSpec{Strategy: OneForOne, Children: []ChildSpec{
			{Component: r.lock, Sup: &SupervisorSpec{Strategy: OneForOne, Children: []ChildSpec{{Component: r.evt}}}},
		}}},
		{"health on sub-group", &SupervisorSpec{Strategy: OneForOne, Children: []ChildSpec{
			{Sup: &SupervisorSpec{Strategy: OneForOne, Children: []ChildSpec{{Component: r.evt}}},
				Health: func(*kernel.Thread, *System, kernel.ComponentID) error { return nil }},
		}}},
		{"unregistered component", &SupervisorSpec{Strategy: OneForOne, Children: []ChildSpec{
			{Component: kernel.ComponentID(99)},
		}}},
		{"duplicate component", &SupervisorSpec{Strategy: OneForOne, Children: []ChildSpec{
			{Component: r.lock}, {Component: r.lock},
		}}},
		{"duplicate across groups", &SupervisorSpec{Strategy: OneForOne, Children: []ChildSpec{
			{Component: r.lock},
			{Sup: &SupervisorSpec{Strategy: OneForOne, Children: []ChildSpec{{Component: r.lock}}}},
		}}},
	}
	for _, c := range bad {
		if err := r.sys.SetSupervisor(c.spec); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// A rejected spec must leave the previous (legacy) policy in place.
	if r.sys.Supervisor() != nil {
		t.Fatal("rejected spec installed")
	}
	good := &SupervisorSpec{Name: "root", Strategy: OneForOne, Children: []ChildSpec{
		{Component: r.lock}, {Component: r.evt}, {Component: r.sys.StorageComp()},
	}}
	if err := r.sys.SetSupervisor(good); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if r.sys.Supervisor() != good {
		t.Fatal("Supervisor() does not return the installed spec")
	}
	if err := r.sys.SetSupervisor(nil); err != nil {
		t.Fatalf("SetSupervisor(nil): %v", err)
	}
	if r.sys.Supervisor() != nil {
		t.Fatal("SetSupervisor(nil) did not restore the legacy policy")
	}
}

func TestServersListedInIDOrder(t *testing.T) {
	r := newRig(t, OnDemand)
	got := r.sys.Servers()
	if len(got) != 2 || got[0] != r.lock || got[1] != r.evt {
		t.Fatalf("Servers() = %v; want [%d %d]", got, r.lock, r.evt)
	}
}

// supervise installs a single-group tree over the rig's two servers in the
// given declaration order.
func supervise(t *testing.T, r *testRig, strategy RestartStrategy, order ...kernel.ComponentID) {
	t.Helper()
	children := make([]ChildSpec, len(order))
	for i, c := range order {
		children[i] = ChildSpec{Component: c}
	}
	if err := r.sys.SetSupervisor(&SupervisorSpec{Name: "group", Strategy: strategy, Children: children}); err != nil {
		t.Fatalf("SetSupervisor: %v", err)
	}
}

// TestSupervisorOneForOne: only the failed child restarts.
func TestSupervisorOneForOne(t *testing.T) {
	r := newRig(t, OnDemand)
	supervise(t, r, OneForOne, r.lock, r.evt)
	k := r.sys.Kernel()
	k.SetInvokeHook(failEvery(k, r.lock, 1))
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		if _, err := st.Call(th, "lock_alloc", 1); err != nil {
			t.Fatalf("alloc: %v", err)
		}
		if e, _ := k.Epoch(r.lock); e != 1 {
			t.Errorf("lock epoch = %d; want 1", e)
		}
		if e, _ := k.Epoch(r.evt); e != 0 {
			t.Errorf("evt epoch = %d; one-for-one must not restart siblings", e)
		}
	})
}

// TestSupervisorAllForOne: every group member restarts with the failed child.
func TestSupervisorAllForOne(t *testing.T) {
	r := newRig(t, OnDemand)
	supervise(t, r, AllForOne, r.lock, r.evt)
	k := r.sys.Kernel()
	k.SetInvokeHook(failEvery(k, r.lock, 1))
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		if _, err := st.Call(th, "lock_alloc", 1); err != nil {
			t.Fatalf("alloc: %v", err)
		}
		if e, _ := k.Epoch(r.lock); e != 1 {
			t.Errorf("lock epoch = %d; want 1", e)
		}
		if e, _ := k.Epoch(r.evt); e != 1 {
			t.Errorf("evt epoch = %d; all-for-one must restart siblings", e)
		}
	})
}

// TestSupervisorRestForOne: children declared after the failed one restart
// with it; children declared before it do not.
func TestSupervisorRestForOne(t *testing.T) {
	// Failed child last: nothing else restarts.
	r := newRig(t, OnDemand)
	supervise(t, r, RestForOne, r.evt, r.lock)
	k := r.sys.Kernel()
	k.SetInvokeHook(failEvery(k, r.lock, 1))
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		if _, err := st.Call(th, "lock_alloc", 1); err != nil {
			t.Fatalf("alloc: %v", err)
		}
		if e, _ := k.Epoch(r.evt); e != 0 {
			t.Errorf("evt epoch = %d; earlier-declared siblings must not restart", e)
		}
	})

	// Failed child first: the rest restarts.
	r2 := newRig(t, OnDemand)
	supervise(t, r2, RestForOne, r2.lock, r2.evt)
	k2 := r2.sys.Kernel()
	k2.SetInvokeHook(failEvery(k2, r2.lock, 1))
	r2.run(t, func(th *kernel.Thread, st *ClientStub) {
		if _, err := st.Call(th, "lock_alloc", 1); err != nil {
			t.Fatalf("alloc: %v", err)
		}
		if e, _ := k2.Epoch(r2.evt); e != 1 {
			t.Errorf("evt epoch = %d; later-declared siblings must restart", e)
		}
	})
}

// TestSupervisorEscalation is the acceptance test for the escalation chain:
// a child group exceeding its restart-intensity budget escalates to the
// parent (which restarts the subtree with fresh budgets), and when the
// root's budget is spent too, the call degrades with a typed error chain
// (DegradedError wrapping ErrRestartIntensity).
func TestSupervisorEscalation(t *testing.T) {
	r := newRig(t, OnDemand)
	r.sys.SetRecoveryPolicy(RecoveryPolicy{MaxRetries: 100, CascadeRetries: 0, Degrade: true})
	// Period far beyond any virtual time the test reaches, so the windows
	// never self-prune and the counts below are exact.
	const period = kernel.Time(1) << 40
	err := r.sys.SetSupervisor(&SupervisorSpec{
		Name: "root", Strategy: OneForOne, Intensity: 1, Period: period,
		Children: []ChildSpec{
			{Sup: &SupervisorSpec{Name: "workers", Strategy: OneForOne, Intensity: 2, Period: period,
				Children: []ChildSpec{{Component: r.lock}}}},
			{Component: r.evt},
		},
	})
	if err != nil {
		t.Fatalf("SetSupervisor: %v", err)
	}
	k := r.sys.Kernel()
	k.SetInvokeHook(failEvery(k, r.lock, 1000)) // every redo faults again
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		_, cerr := st.Call(th, "lock_alloc", 1)
		if !errors.Is(cerr, ErrDegraded) {
			t.Fatalf("err = %v; want ErrDegraded", cerr)
		}
		if !errors.Is(cerr, ErrRestartIntensity) {
			t.Fatalf("err = %v; degradation must carry ErrRestartIntensity", cerr)
		}
		// Restart ledger: 2 charged to workers, 1 escalated to root (fresh
		// subtree budgets), 2 more to workers, then both budgets spent.
		var de *DegradedError
		if !errors.As(cerr, &de) || de.Attempts != 5 {
			t.Fatalf("err = %#v; want *DegradedError after 5 attempts", cerr)
		}
		if e, _ := k.Epoch(r.lock); e != 6 {
			t.Errorf("lock epoch = %d; want 6 (five supervised restarts plus the refused fault's EnsureRebooted)", e)
		}
		if e, _ := k.Epoch(r.evt); e != 0 {
			t.Errorf("evt epoch = %d; the sibling subtree must be untouched", e)
		}
		if k.Halted() {
			t.Fatal("machine halted; supervision exhaustion must degrade, not crash")
		}
	})
}

// TestRestartIntensityWindowPrunes: restarts older than the period fall out
// of the window, refilling the budget with virtual time.
func TestRestartIntensityWindowPrunes(t *testing.T) {
	n := &supNode{spec: &SupervisorSpec{Strategy: OneForOne, Intensity: 2, Period: 10}}
	if !n.charge(0) || !n.charge(5) {
		t.Fatal("budget refused below intensity")
	}
	if n.charge(9) {
		t.Fatal("budget admitted past intensity inside the window")
	}
	// At t=15 the restart at t=0 has aged out (15-0 >= 10), as has t=5
	// (15-5 >= 10): the whole budget refills.
	if !n.charge(15) || !n.charge(16) {
		t.Fatal("budget not refilled after the window pruned")
	}
	if n.charge(17) {
		t.Fatal("refilled budget admitted one too many")
	}
}

// TestSupervisorLegacyEquivalence: a supervised component under a roomy
// budget recovers exactly like the legacy flat policy — same epochs, same
// attempts — so legacy campaigns stay byte-identical.
func TestSupervisorLegacyEquivalence(t *testing.T) {
	run := func(install bool) (epoch uint64, redos uint64) {
		r := newRig(t, OnDemand)
		if install {
			supervise(t, r, OneForOne, r.lock, r.evt)
		}
		k := r.sys.Kernel()
		k.SetInvokeHook(failEvery(k, r.lock, 3))
		r.run(t, func(th *kernel.Thread, st *ClientStub) {
			if _, err := st.Call(th, "lock_alloc", 1); err != nil {
				t.Fatalf("alloc: %v", err)
			}
			epoch, _ = k.Epoch(r.lock)
			redos = st.Metrics().Redos
		})
		return epoch, redos
	}
	le, lr := run(false)
	se, sr := run(true)
	if le != se || lr != sr {
		t.Fatalf("supervised recovery (epoch %d, redos %d) diverged from legacy (epoch %d, redos %d)", se, sr, le, lr)
	}
}

// TestRunHealthChecks: a failing probe drives a proactive restart through
// the supervision machinery; a healthy tree restarts nothing.
func TestRunHealthChecks(t *testing.T) {
	r := newRig(t, OnDemand)
	sick := true
	probes := 0
	err := r.sys.SetSupervisor(&SupervisorSpec{Name: "root", Strategy: OneForOne, Children: []ChildSpec{
		{Component: r.lock, Health: func(*kernel.Thread, *System, kernel.ComponentID) error {
			probes++
			if sick {
				return errors.New("probe timeout")
			}
			return nil
		}},
		{Component: r.evt},
	}})
	if err != nil {
		t.Fatalf("SetSupervisor: %v", err)
	}
	k := r.sys.Kernel()
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		n, herr := r.sys.RunHealthChecks(th)
		if herr != nil || n != 1 {
			t.Fatalf("RunHealthChecks = %d, %v; want 1 restart", n, herr)
		}
		if e, _ := k.Epoch(r.lock); e != 1 {
			t.Errorf("lock epoch = %d; want 1 after proactive restart", e)
		}
		sick = false
		n, herr = r.sys.RunHealthChecks(th)
		if herr != nil || n != 0 {
			t.Fatalf("RunHealthChecks (healthy) = %d, %v; want 0", n, herr)
		}
		if probes != 2 {
			t.Errorf("probes = %d; want 2 (evt has no health check)", probes)
		}
		// The restarted server is immediately usable.
		if _, cerr := st.Call(th, "lock_alloc", 1); cerr != nil {
			t.Errorf("alloc after health restart: %v", cerr)
		}
	})
}

// TestSetSupervisorAtRuntime: swapping the tree mid-run takes effect on the
// next restart — the runtime-adaptive policy switch.
func TestSetSupervisorAtRuntime(t *testing.T) {
	r := newRig(t, OnDemand)
	k := r.sys.Kernel()
	k.SetInvokeHook(failEvery(k, r.lock, 1))
	r.run(t, func(th *kernel.Thread, st *ClientStub) {
		// First fault: legacy flat policy, sibling untouched.
		id, err := st.Call(th, "lock_alloc", 1)
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		if e, _ := k.Epoch(r.evt); e != 0 {
			t.Fatalf("evt epoch = %d before the switch", e)
		}
		supervise(t, r, AllForOne, r.lock, r.evt)
		// Second fault: the freshly installed all-for-one group restarts
		// the sibling too.
		if ferr := k.FailComponent(r.lock); ferr != nil {
			t.Fatalf("FailComponent: %v", ferr)
		}
		if _, err := st.Call(th, "lock_take", 1, id); err != nil {
			t.Fatalf("lock_take after switch: %v", err)
		}
		if e, _ := k.Epoch(r.evt); e != 1 {
			t.Errorf("evt epoch = %d; runtime-installed all-for-one must restart it", e)
		}
	})
}

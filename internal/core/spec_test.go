package core

import (
	"errors"
	"strings"
	"testing"
)

// lockSpec returns a valid lock-like specification used across tests.
func lockSpec() *Spec {
	return &Spec{
		Service:       "lock",
		DescHasParent: ParentSolo,
		DescBlock:     true,
		Funcs: []*FuncSpec{
			{Name: "lock_alloc", RetCType: "long", RetDescID: true, RetName: "lockid",
				Params: []ParamSpec{{CType: "componentid_t", Name: "compid", Role: RoleDescData}}},
			{Name: "lock_take", Params: []ParamSpec{
				{CType: "componentid_t", Name: "compid", Role: RolePlain},
				{CType: "long", Name: "lockid", Role: RoleDesc}}},
			{Name: "lock_release", Params: []ParamSpec{
				{CType: "componentid_t", Name: "compid", Role: RolePlain},
				{CType: "long", Name: "lockid", Role: RoleDesc}}},
			{Name: "lock_free", Params: []ParamSpec{
				{CType: "long", Name: "lockid", Role: RoleDesc}}},
		},
		Transitions: []Transition{
			{From: "lock_alloc", To: "lock_take"},
			{From: "lock_alloc", To: "lock_free"},
			{From: "lock_take", To: "lock_release"},
			{From: "lock_release", To: "lock_take"},
			{From: "lock_release", To: "lock_free"},
		},
		Creation: []string{"lock_alloc"},
		Terminal: []string{"lock_free"},
		Blocking: []string{"lock_take"},
		Wakeup:   []string{"lock_release"},
		Holds:    []HoldPair{{Hold: "lock_take", Release: "lock_release"}},
	}
}

func TestLockSpecValidates(t *testing.T) {
	if err := lockSpec().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSpecValidationErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"empty service", func(s *Spec) { s.Service = "" }, "empty service name"},
		{"no funcs", func(s *Spec) { s.Funcs = nil }, "no interface functions"},
		{"dup func", func(s *Spec) { s.Funcs = append(s.Funcs, &FuncSpec{Name: "lock_take"}) }, "duplicate"},
		{"unknown creation", func(s *Spec) { s.Creation = []string{"nope"} }, "unknown function"},
		{"unknown transition", func(s *Spec) {
			s.Transitions = append(s.Transitions, Transition{From: "x", To: "lock_take"})
		}, "unknown function"},
		{"transition from terminal", func(s *Spec) {
			s.Transitions = append(s.Transitions, Transition{From: "lock_free", To: "lock_take"})
		}, "terminal"},
		{"no creation", func(s *Spec) { s.Creation = nil }, "no creation function"},
		{"block flag mismatch", func(s *Spec) { s.DescBlock = false }, "desc_block"},
		{"close children without parent", func(s *Spec) { s.DescCloseChildren = true }, "desc_close_children"},
		{"Y with C", func(s *Spec) {
			s.DescHasParent = ParentSame
			s.Funcs[0].Params = append(s.Funcs[0].Params, ParamSpec{CType: "long", Name: "p", Role: RoleParentDesc})
			s.DescCloseChildren = true
			s.DescCloseRemove = true
		}, "desc_close_remove"},
		{"parent kind without parent param", func(s *Spec) { s.DescHasParent = ParentSame }, "parent_desc"},
		{"parent kind unset", func(s *Spec) { s.DescHasParent = 0 }, "desc_has_parent"},
		{"two desc params", func(s *Spec) {
			s.Funcs[1].Params = append(s.Funcs[1].Params, ParamSpec{CType: "long", Name: "x", Role: RoleDesc})
		}, "duplicate"},
		{"non-creation without desc", func(s *Spec) { s.Funcs[3].Params[0].Role = RolePlain }, "lacks a desc"},
		{"hold not blocking", func(s *Spec) {
			s.Holds = []HoldPair{{Hold: "lock_release", Release: "lock_take"}}
		}, "sm_block"},
		{"restore with plain param", func(s *Spec) { s.Restore = []string{"lock_take"} }, "restore"},
		{"update and creation overlap", func(s *Spec) { s.Update = []string{"lock_alloc"} }, "update/reset"},
		{"parent_ns without parent_desc", func(s *Spec) {
			s.Funcs[1].Params[0].Role = RoleParentNS
		}, "parent_ns"},
		{"creation without id", func(s *Spec) { s.Funcs[0].RetDescID = false }, "creation function"},
		{"dup set member", func(s *Spec) {
			s.Creation = append(s.Creation, "lock_alloc")
		}, "duplicate sm_creation(lock_alloc) declaration"},
		{"dup transition", func(s *Spec) {
			s.Transitions = append(s.Transitions, Transition{From: "lock_alloc", To: "lock_take"})
		}, "duplicate sm_transition(lock_alloc, lock_take) declaration"},
		{"dup hold", func(s *Spec) {
			s.Holds = append(s.Holds, HoldPair{Hold: "lock_take", Release: "lock_release"})
		}, "duplicate sm_hold for hold function lock_take"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := lockSpec()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted invalid spec")
			}
			if !errors.Is(err, ErrInvalidSpec) {
				t.Fatalf("error %v does not wrap ErrInvalidSpec", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestMechanismDerivation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   []Mechanism
		not    []Mechanism
	}{
		{"lock base", func(s *Spec) {}, []Mechanism{MechR0, MechT1, MechT0}, []Mechanism{MechD0, MechD1, MechG0, MechG1, MechU0}},
		{"global adds G0+U0", func(s *Spec) { s.DescIsGlobal = true }, []Mechanism{MechG0, MechU0}, nil},
		{"resource data adds G1", func(s *Spec) { s.RescHasData = true }, []Mechanism{MechG1}, nil},
		{"parent adds D1", func(s *Spec) {
			s.DescHasParent = ParentSame
			s.Funcs[0].Params = append(s.Funcs[0].Params, ParamSpec{CType: "long", Name: "p", Role: RoleParentDesc})
		}, []Mechanism{MechD1}, []Mechanism{MechD0}},
		{"children adds D0", func(s *Spec) {
			s.DescHasParent = ParentSame
			s.Funcs[0].Params = append(s.Funcs[0].Params, ParamSpec{CType: "long", Name: "p", Role: RoleParentDesc})
			s.DescCloseChildren = true
		}, []Mechanism{MechD0, MechD1}, nil},
		{"non-blocking drops T0", func(s *Spec) {
			s.DescBlock = false
			s.Blocking = nil
			s.Holds = nil
		}, []Mechanism{MechR0, MechT1}, []Mechanism{MechT0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := lockSpec()
			tc.mutate(s)
			for _, m := range tc.want {
				if !s.HasMechanism(m) {
					t.Errorf("mechanism %v missing; got %v", m, s.Mechanisms())
				}
			}
			for _, m := range tc.not {
				if s.HasMechanism(m) {
					t.Errorf("mechanism %v unexpectedly present; got %v", m, s.Mechanisms())
				}
			}
		})
	}
}

func TestFuncSpecIndexes(t *testing.T) {
	f := &FuncSpec{Name: "alias", Params: []ParamSpec{
		{Name: "pns", Role: RoleParentNS},
		{Name: "paddr", Role: RoleParentDesc},
		{Name: "ns", Role: RoleDescNS},
		{Name: "addr", Role: RoleDesc},
		{Name: "flags", Role: RolePlain},
	}}
	if f.ParentNSIdx() != 0 || f.ParentIdx() != 1 || f.NSIdx() != 2 || f.DescIdx() != 3 {
		t.Fatalf("indexes = %d %d %d %d; want 0 1 2 3",
			f.ParentNSIdx(), f.ParentIdx(), f.NSIdx(), f.DescIdx())
	}
}

func TestPerThreadAndPureClassification(t *testing.T) {
	s := lockSpec()
	for _, fn := range []string{"lock_take", "lock_release"} {
		if !s.IsPerThread(fn) {
			t.Errorf("IsPerThread(%s) = false; want true", fn)
		}
		if s.IsPure(fn) {
			t.Errorf("IsPure(%s) = true; want false", fn)
		}
	}
	if s.IsPerThread("lock_alloc") || s.IsPerThread("lock_free") {
		t.Error("alloc/free classified per-thread")
	}
	if s.IsPure("lock_alloc") || s.IsPure("lock_free") {
		t.Error("creation/terminal classified pure")
	}
}

func TestStringers(t *testing.T) {
	for _, tc := range []struct {
		got  string
		want string
	}{
		{ParentSolo.String(), "Solo"},
		{ParentSame.String(), "Parent"},
		{ParentXC.String(), "XCParent"},
		{RoleDesc.String(), "desc"},
		{RoleDescNS.String(), "desc_ns"},
		{MechR0.String(), "R0"},
		{MechU0.String(), "U0"},
		{OnDemand.String(), "on-demand"},
		{Eager.String(), "eager"},
	} {
		if tc.got != tc.want {
			t.Errorf("String() = %q; want %q", tc.got, tc.want)
		}
	}
}

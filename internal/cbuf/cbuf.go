// Package cbuf implements the zero-copy shared-buffer subsystem ("cbufs",
// Ren et al., ISMM 2016) that COMPOSITE uses to move bulk data between
// components without copying.
//
// A cbuf is a fixed-size buffer owned by the producing component, which has
// write access; every other component that maps the buffer sees it read-only.
// This access restriction is what prevents fault propagation through shared
// buffers: a faulty consumer cannot corrupt data in flight, so the storage
// component can trust the slices it retains for recovery (mechanism G1).
//
// Like the kernel, the cbuf manager is part of the trusted computing base of
// the paper's design (§II-E): it is not a fault-injection target, and
// SuperGlue does not attempt to recover it.
package cbuf

import (
	"errors"
	"fmt"
	"sync"
)

// ID names one buffer. IDs are never reused within a manager's lifetime, so
// a stale reference is detected rather than silently aliased.
type ID int64

// ComponentID mirrors kernel.ComponentID without importing it; the cbuf
// manager sits below the kernel's component layer.
type ComponentID int32

// Manager allocates and tracks shared buffers. The zero value is ready to
// use.
type Manager struct {
	mu     sync.Mutex
	next   ID
	bufs   map[ID]*buffer
	quota  int // bytes; 0 means unlimited
	inUse  int
	allocs uint64
}

type buffer struct {
	owner     ComponentID
	data      []byte
	readers   map[ComponentID]bool
	delegates map[ComponentID]bool
	freed     bool
}

// Errors reported by the manager.
var (
	// ErrNoSuchBuffer reports an unknown or already-freed buffer ID.
	ErrNoSuchBuffer = errors.New("cbuf: no such buffer")
	// ErrNotOwner reports a write attempt by a component that does not own
	// the buffer (read-only mapping).
	ErrNotOwner = errors.New("cbuf: component does not have write access")
	// ErrNotMapped reports a read by a component that never mapped the
	// buffer.
	ErrNotMapped = errors.New("cbuf: buffer not mapped into component")
	// ErrQuota reports allocation beyond the configured memory quota.
	ErrQuota = errors.New("cbuf: allocation exceeds quota")
	// ErrBadRange reports an out-of-bounds buffer access.
	ErrBadRange = errors.New("cbuf: access out of range")
)

// NewManager returns a Manager with an optional byte quota (0 = unlimited).
func NewManager(quota int) *Manager {
	return &Manager{bufs: make(map[ID]*buffer), quota: quota}
}

// Alloc creates a buffer of size bytes owned (writable) by owner. The owner
// is implicitly mapped.
func (m *Manager) Alloc(owner ComponentID, size int) (ID, error) {
	if size <= 0 {
		return 0, fmt.Errorf("cbuf: invalid size %d", size)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.quota > 0 && m.inUse+size > m.quota {
		return 0, fmt.Errorf("%w: %d bytes requested, %d available", ErrQuota, size, m.quota-m.inUse)
	}
	m.next++
	id := m.next
	m.bufs[id] = &buffer{
		owner:   owner,
		data:    make([]byte, size),
		readers: map[ComponentID]bool{owner: true},
	}
	m.inUse += size
	m.allocs++
	return id, nil
}

// Map grants component comp read-only access to buffer id.
func (m *Manager) Map(id ID, comp ComponentID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, err := m.get(id)
	if err != nil {
		return err
	}
	b.readers[comp] = true
	return nil
}

// Write copies data into the buffer at off. Only the owning component may
// write — consumers hold read-only mappings.
func (m *Manager) Write(id ID, writer ComponentID, off int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, err := m.get(id)
	if err != nil {
		return err
	}
	if b.owner != writer && !b.delegates[writer] {
		return fmt.Errorf("%w: buffer %d owned by %d, write from %d", ErrNotOwner, id, b.owner, writer)
	}
	if off < 0 || off+len(data) > len(b.data) {
		return fmt.Errorf("%w: write [%d, %d) into %d-byte buffer", ErrBadRange, off, off+len(data), len(b.data))
	}
	copy(b.data[off:], data)
	return nil
}

// Read copies length bytes starting at off into a fresh slice. The reader
// must have mapped the buffer. Returning a copy preserves the read-only
// discipline at the package boundary.
func (m *Manager) Read(id ID, reader ComponentID, off, length int) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, err := m.get(id)
	if err != nil {
		return nil, err
	}
	if !b.readers[reader] {
		return nil, fmt.Errorf("%w: buffer %d, component %d", ErrNotMapped, id, reader)
	}
	if off < 0 || length < 0 || off+length > len(b.data) {
		return nil, fmt.Errorf("%w: read [%d, %d) from %d-byte buffer", ErrBadRange, off, off+length, len(b.data))
	}
	out := make([]byte, length)
	copy(out, b.data[off:])
	return out, nil
}

// Delegate lets the owner grant temporary write access to another component,
// the pattern a client uses to let a server fill a result buffer (e.g., a
// file read). Only the owner may delegate; Revoke withdraws the grant.
// Delegation is the one deliberate exception to the producer-only-write
// rule, scoped to scratch result buffers that recovery never depends on.
func (m *Manager) Delegate(id ID, owner, delegate ComponentID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, err := m.get(id)
	if err != nil {
		return err
	}
	if b.owner != owner {
		return fmt.Errorf("%w: buffer %d owned by %d, delegate from %d", ErrNotOwner, id, b.owner, owner)
	}
	if b.delegates == nil {
		b.delegates = make(map[ComponentID]bool)
	}
	b.delegates[delegate] = true
	b.readers[delegate] = true
	return nil
}

// Revoke withdraws a write delegation.
func (m *Manager) Revoke(id ID, owner, delegate ComponentID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, err := m.get(id)
	if err != nil {
		return err
	}
	if b.owner != owner {
		return fmt.Errorf("%w: buffer %d owned by %d, revoke from %d", ErrNotOwner, id, b.owner, owner)
	}
	delete(b.delegates, delegate)
	return nil
}

// Size returns the buffer's capacity in bytes.
func (m *Manager) Size(id ID) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, err := m.get(id)
	if err != nil {
		return 0, err
	}
	return len(b.data), nil
}

// Owner returns the component with write access to the buffer.
func (m *Manager) Owner(id ID) (ComponentID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, err := m.get(id)
	if err != nil {
		return 0, err
	}
	return b.owner, nil
}

// Free releases the buffer. Further access fails with ErrNoSuchBuffer.
func (m *Manager) Free(id ID, owner ComponentID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, err := m.get(id)
	if err != nil {
		return err
	}
	if b.owner != owner {
		return fmt.Errorf("%w: buffer %d owned by %d, free from %d", ErrNotOwner, id, b.owner, owner)
	}
	b.freed = true
	m.inUse -= len(b.data)
	delete(m.bufs, id)
	return nil
}

// InUse returns the total bytes currently allocated.
func (m *Manager) InUse() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inUse
}

// Allocs returns the total number of successful allocations.
func (m *Manager) Allocs() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.allocs
}

func (m *Manager) get(id ID) (*buffer, error) {
	b, ok := m.bufs[id]
	if !ok || b.freed {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchBuffer, id)
	}
	return b, nil
}

package cbuf

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestAllocWriteRead(t *testing.T) {
	m := NewManager(0)
	id, err := m.Alloc(1, 64)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := m.Write(id, 1, 0, []byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := m.Read(id, 1, 0, 5)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Read = %q; want hello", got)
	}
}

func TestWriteAtOffset(t *testing.T) {
	m := NewManager(0)
	id, _ := m.Alloc(1, 16)
	if err := m.Write(id, 1, 4, []byte("abcd")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := m.Read(id, 1, 0, 16)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	want := append(make([]byte, 4), []byte("abcd")...)
	want = append(want, make([]byte, 8)...)
	if !bytes.Equal(got, want) {
		t.Fatalf("Read = %v; want %v", got, want)
	}
}

func TestConsumerIsReadOnly(t *testing.T) {
	m := NewManager(0)
	id, _ := m.Alloc(1, 8)
	if err := m.Map(id, 2); err != nil {
		t.Fatalf("Map: %v", err)
	}
	if err := m.Write(id, 2, 0, []byte("x")); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("consumer write err = %v; want ErrNotOwner", err)
	}
	if _, err := m.Read(id, 2, 0, 1); err != nil {
		t.Fatalf("consumer read: %v", err)
	}
}

func TestUnmappedReaderRejected(t *testing.T) {
	m := NewManager(0)
	id, _ := m.Alloc(1, 8)
	if _, err := m.Read(id, 3, 0, 1); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("unmapped read err = %v; want ErrNotMapped", err)
	}
}

func TestBadRanges(t *testing.T) {
	m := NewManager(0)
	id, _ := m.Alloc(1, 8)
	if err := m.Write(id, 1, 6, []byte("toolong")); !errors.Is(err, ErrBadRange) {
		t.Fatalf("overflowing write err = %v; want ErrBadRange", err)
	}
	if _, err := m.Read(id, 1, -1, 2); !errors.Is(err, ErrBadRange) {
		t.Fatalf("negative-offset read err = %v; want ErrBadRange", err)
	}
	if _, err := m.Read(id, 1, 0, 9); !errors.Is(err, ErrBadRange) {
		t.Fatalf("overlong read err = %v; want ErrBadRange", err)
	}
}

func TestFreeAndStaleAccess(t *testing.T) {
	m := NewManager(0)
	id, _ := m.Alloc(1, 8)
	if err := m.Free(id, 2); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("foreign free err = %v; want ErrNotOwner", err)
	}
	if err := m.Free(id, 1); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if _, err := m.Read(id, 1, 0, 1); !errors.Is(err, ErrNoSuchBuffer) {
		t.Fatalf("stale read err = %v; want ErrNoSuchBuffer", err)
	}
	if err := m.Free(id, 1); !errors.Is(err, ErrNoSuchBuffer) {
		t.Fatalf("double free err = %v; want ErrNoSuchBuffer", err)
	}
	if m.InUse() != 0 {
		t.Fatalf("InUse = %d after free; want 0", m.InUse())
	}
}

func TestQuota(t *testing.T) {
	m := NewManager(100)
	if _, err := m.Alloc(1, 80); err != nil {
		t.Fatalf("Alloc within quota: %v", err)
	}
	if _, err := m.Alloc(1, 30); !errors.Is(err, ErrQuota) {
		t.Fatalf("over-quota alloc err = %v; want ErrQuota", err)
	}
	if _, err := m.Alloc(1, 20); err != nil {
		t.Fatalf("Alloc exactly filling quota: %v", err)
	}
}

func TestInvalidSize(t *testing.T) {
	m := NewManager(0)
	for _, size := range []int{0, -1} {
		if _, err := m.Alloc(1, size); err == nil {
			t.Fatalf("Alloc(size=%d) succeeded; want error", size)
		}
	}
}

func TestIDsNeverReused(t *testing.T) {
	m := NewManager(0)
	id1, _ := m.Alloc(1, 8)
	if err := m.Free(id1, 1); err != nil {
		t.Fatalf("Free: %v", err)
	}
	id2, _ := m.Alloc(1, 8)
	if id1 == id2 {
		t.Fatalf("buffer ID %d reused after free", id1)
	}
}

func TestOwnerAndSize(t *testing.T) {
	m := NewManager(0)
	id, _ := m.Alloc(7, 42)
	if owner, err := m.Owner(id); err != nil || owner != 7 {
		t.Fatalf("Owner = (%d, %v); want (7, nil)", owner, err)
	}
	if size, err := m.Size(id); err != nil || size != 42 {
		t.Fatalf("Size = (%d, %v); want (42, nil)", size, err)
	}
}

// TestReadReturnsCopy verifies the read-only discipline: mutating a returned
// slice must not affect the buffer.
func TestReadReturnsCopy(t *testing.T) {
	m := NewManager(0)
	id, _ := m.Alloc(1, 4)
	if err := m.Write(id, 1, 0, []byte{1, 2, 3, 4}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, _ := m.Read(id, 1, 0, 4)
	got[0] = 99
	again, _ := m.Read(id, 1, 0, 4)
	if again[0] != 1 {
		t.Fatal("mutating a Read result corrupted the buffer: copy-at-boundary violated")
	}
}

// TestWriteReadRoundTripProperty checks that any write is read back intact
// from any mapped reader, at any valid offset.
func TestWriteReadRoundTripProperty(t *testing.T) {
	m := NewManager(0)
	prop := func(data []byte, off uint8) bool {
		if len(data) == 0 {
			return true
		}
		size := int(off) + len(data)
		id, err := m.Alloc(1, size)
		if err != nil {
			return false
		}
		if err := m.Map(id, 2); err != nil {
			return false
		}
		if err := m.Write(id, 1, int(off), data); err != nil {
			return false
		}
		got, err := m.Read(id, 2, int(off), len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

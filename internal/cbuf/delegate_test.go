package cbuf

import (
	"errors"
	"testing"
)

func TestDelegateGrantsWrite(t *testing.T) {
	m := NewManager(0)
	id, _ := m.Alloc(1, 8)
	if err := m.Write(id, 2, 0, []byte("x")); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("pre-delegation write err = %v; want ErrNotOwner", err)
	}
	if err := m.Delegate(id, 1, 2); err != nil {
		t.Fatalf("Delegate: %v", err)
	}
	if err := m.Write(id, 2, 0, []byte("x")); err != nil {
		t.Fatalf("delegated write: %v", err)
	}
	// Delegation also maps the delegate for reading.
	if _, err := m.Read(id, 2, 0, 1); err != nil {
		t.Fatalf("delegate read: %v", err)
	}
}

func TestRevokeWithdrawsDelegation(t *testing.T) {
	m := NewManager(0)
	id, _ := m.Alloc(1, 8)
	if err := m.Delegate(id, 1, 2); err != nil {
		t.Fatalf("Delegate: %v", err)
	}
	if err := m.Revoke(id, 1, 2); err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	if err := m.Write(id, 2, 0, []byte("x")); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("post-revoke write err = %v; want ErrNotOwner", err)
	}
}

func TestDelegateOnlyByOwner(t *testing.T) {
	m := NewManager(0)
	id, _ := m.Alloc(1, 8)
	if err := m.Delegate(id, 2, 3); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("foreign Delegate err = %v; want ErrNotOwner", err)
	}
	if err := m.Revoke(id, 2, 3); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("foreign Revoke err = %v; want ErrNotOwner", err)
	}
	if err := m.Delegate(ID(99), 1, 2); !errors.Is(err, ErrNoSuchBuffer) {
		t.Fatalf("Delegate on unknown buffer err = %v; want ErrNoSuchBuffer", err)
	}
	if err := m.Revoke(ID(99), 1, 2); !errors.Is(err, ErrNoSuchBuffer) {
		t.Fatalf("Revoke on unknown buffer err = %v; want ErrNoSuchBuffer", err)
	}
}

package superglue

import (
	"testing"
	"time"

	"superglue/internal/experiments"
)

// TestStubOverheadRatio guards the Fig. 6(a) infrastructure-overhead gap:
// the full SuperGlue stub (descriptor tracking + state-machine validation
// + recovery plumbing) must stay within 1.4× of the base (no-stub) cost
// for the sched micro-op. The paper's measured overhead is ~26% on ia32
// (§V-B); this guard is looser because the simulator's base path is
// itself only a few map operations, but it fails if a regression reopens
// the gap the stub optimizations closed: needsArgs gating, tracker
// lookup cache, precompiled server-stub dispatch records, and the
// bind-once client calls (core.BoundCall) plus hold-free per-thread
// tracking gate that took the measured ratio from ~1.35× to ~1.15×.
func TestStubOverheadRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-based guard skipped in -short")
	}
	const iters = 300_000
	// Min-of-3 damps scheduler noise on the 1-CPU CI host; per-run setup
	// (system boot + one thread) is amortized over 300k iterations.
	measure := func(kind experiments.StubKind) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if err := experiments.RunMicrobench("sched", kind, iters); err != nil {
				t.Fatalf("RunMicrobench(sched, %v): %v", kind, err)
			}
			if el := time.Since(start); el < best {
				best = el
			}
		}
		return best
	}
	base := measure(experiments.KindBase)
	sg := measure(experiments.KindSuperGlue)
	ratio := float64(sg) / float64(base)
	t.Logf("sched micro-op: base %v, superglue %v, ratio %.2fx (budget 1.40x)", base, sg, ratio)
	if ratio > 1.4 {
		t.Fatalf("superglue stub overhead ratio %.2fx exceeds the 1.4x budget (base %v, superglue %v)",
			ratio, base, sg)
	}
}

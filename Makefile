# Convenience targets for the SuperGlue reproduction (stdlib-only Go).

GO ?= go
# Repetitions for `make bench`; raise (e.g. BENCHCOUNT=10) for
# benchstat-grade samples: go install golang.org/x/perf/cmd/benchstat
# and compare two saved runs with `benchstat old.txt new.txt`.
BENCHCOUNT ?= 1

.PHONY: all build test race race-smoke fleet-smoke bench bench-json gen lint check experiments watchdog-experiments fault-experiments storage-experiments fuzz clean

all: build test lint check

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Parallel campaign engine under the race detector: every service, trials
# sharded over 4 workers with per-trial trace recorders (the same runs CI
# performs). Campaign output is byte-identical to -workers 1. The second
# run drives the shaped-campaign planner and the typed-fault injectors
# (storm bursts across all eight fault kinds, supervision tree installed).
race-smoke:
	$(GO) run -race ./cmd/swifi -trials 20 -seed 2026 -workers 4 -trace
	$(GO) run -race ./cmd/swifi -trials 20 -seed 2026 -workers 4 -shape storm -policy one-for-one
	$(GO) run -race ./cmd/swifi -trials 20 -seed 2026 -workers 4 -shape storm -cores 4
	$(GO) run -race ./cmd/swifi -trials 20 -seed 2026 -workers 4 -shape storm \
		-kinds storage-crash,storage-corruption -replicas 3

# Fleet-scale campaign smoke (DESIGN.md §14), under the race detector:
#   1. checkpoint/resume — a campaign killed midway (-halt-after, exit 3)
#      and then -resume'd must render stdout and a trace snapshot
#      byte-identical to an uninterrupted reference run;
#   2. shard/merge — two -shard halves folded by -merge (shard files fed
#      in reversed order) must be byte-identical to the single-process
#      run of the same storm campaign.
fleet-smoke:
	set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -race -o $$tmp/swifi ./cmd/swifi; \
	mkdir $$tmp/ref $$tmp/res $$tmp/sref $$tmp/shard; \
	(cd $$tmp/ref && $$tmp/swifi -service lock -trials 30 -seed 2026 -workers 4 \
		-trace -trace-out snap.json -checkpoint ckpt.bin -checkpoint-every 7 >stdout.txt); \
	code=0; (cd $$tmp/res && $$tmp/swifi -service lock -trials 30 -seed 2026 -workers 4 \
		-trace -trace-out snap.json -checkpoint ckpt.bin -checkpoint-every 7 \
		-halt-after 13 >/dev/null 2>halt.log) || code=$$?; \
	test $$code -eq 3 || { echo "fleet-smoke: want exit 3 from -halt-after, got $$code"; cat $$tmp/res/halt.log; exit 1; }; \
	(cd $$tmp/res && $$tmp/swifi -service lock -trials 30 -seed 2026 -workers 4 \
		-trace -trace-out snap.json -checkpoint ckpt.bin -checkpoint-every 7 -resume >stdout.txt); \
	cmp $$tmp/ref/stdout.txt $$tmp/res/stdout.txt; \
	cmp $$tmp/ref/lock.snap.json $$tmp/res/lock.snap.json; \
	(cd $$tmp/sref && $$tmp/swifi -service lock -trials 30 -seed 2026 -workers 4 \
		-shape storm -trace -trace-out snap.json >stdout.txt); \
	(cd $$tmp/shard && $$tmp/swifi -service lock -trials 30 -seed 2026 -workers 4 \
		-shape storm -trace -shard 0/2 -shard-out sh.bin >/dev/null); \
	(cd $$tmp/shard && $$tmp/swifi -service lock -trials 30 -seed 2026 -workers 4 \
		-shape storm -trace -shard 1/2 -shard-out sh.bin >/dev/null); \
	(cd $$tmp/shard && $$tmp/swifi -merge -trace-out snap.json \
		lock.shard1of2.sh.bin lock.shard0of2.sh.bin >stdout.txt); \
	cmp $$tmp/sref/stdout.txt $$tmp/shard/stdout.txt; \
	cmp $$tmp/sref/lock.snap.json $$tmp/shard/lock.snap.json; \
	echo "fleet-smoke: checkpoint/resume and shard/merge byte-identical"

# benchstat-friendly output: benchmarks only (no tests), repeatable count.
bench:
	$(GO) test -run '^$$' -bench=. -benchmem -count=$(BENCHCOUNT) ./...

# Benchmark trajectory: write machine-readable measurements of the headline
# benchmarks (invocation primitive, Fig. 6a tracking, Fig. 7 web server) to
# BENCH_superglue.json. The traced SWIFI campaigns behind the recovery
# breakdown shard over all cores (-workers 0 = GOMAXPROCS); the wall-clock
# benchmarks stay serial so their timings are uncontended.
bench-json:
	$(GO) run ./cmd/benchjson -workers 0 -o BENCH_superglue.json

# Regenerate the committed sgc-generated stubs from the IDL specifications
# (golden-tested by internal/gen.TestCommittedStubsMatchGenerator).
gen:
	$(GO) run ./cmd/sgc -builtin -loc -o internal/gen

# Static analysis beyond the compiler (see DESIGN.md §7):
#   - go vet: the standard checks;
#   - sgvet: the runtime-contract analyzers (determinism, atomicstate,
#     stubdiscipline, shadowbuiltin) plus missingdoc over the
#     deterministic-replay packages and every generated stub package;
#   - sgvet -run missingdoc: godoc completeness over the remaining API
#     surface (c3 stays out of the determinism list: the hand-written
#     baseline is kept verbatim for the Fig. 6(c) LOC comparison);
#   - sgvet over cmd/... and examples/...: the command-line front ends and
#     runnable examples obey the same runtime contracts;
#   - sgc vet -builtin: semantic spec lints (SG1xx) over the six system
#     services;
#   - sgc vet -gen: committed generated stubs must match the generator;
#   - sgc doc -check: committed docs/services references must match the
#     specifications;
#   - sgc check -builtin: the bounded exhaustive recovery model checker
#     (SG2xx, docs/MODELCHECK.md) over the six system services.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/sgvet internal/kernel internal/core internal/swifi \
		internal/codegen internal/gen/genrt internal/gen/genevent \
		internal/gen/genlock internal/gen/genmm internal/gen/genramfs \
		internal/gen/gensched internal/gen/gentimer
	$(GO) run ./cmd/sgvet -run missingdoc internal/c3 internal/obs \
		internal/fault internal/idl internal/docgen internal/experiments \
		internal/webserver internal/storage internal/cbuf \
		internal/workload internal/pool internal/analysis/govet \
		internal/analysis/speclint internal/analysis/driftcheck \
		internal/analysis/model internal/analysis/sarif
	$(GO) run ./cmd/sgvet cmd/benchjson cmd/microbench cmd/sgc cmd/sgvet \
		cmd/swifi cmd/webbench examples/filesystem examples/idlpipeline \
		examples/lockservice examples/quickstart examples/webserver
	$(GO) run ./cmd/sgc vet -builtin -gen
	$(GO) run ./cmd/sgc doc -check
	$(GO) run ./cmd/sgc check -builtin

# Exhaustive recovery verification with an explicit resource guard: the
# model checker must finish all six builtin specs within the wall-clock
# and state budgets below, printing the per-spec BFS state-count
# trajectory so a budget regression is visible in the log before it
# becomes a failure. Exceeds fail loudly (nonzero exit), they never
# silently truncate the pass.
check:
	$(GO) run ./cmd/sgc check -builtin -trajectory -budget 30s -max-states 1048576

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/swifi -trials 500 -seed 2026
	$(GO) run ./cmd/microbench
	$(GO) run ./cmd/webbench -requests 50000 -repeats 5

# Table II': paired hang-injection campaigns, kernel watchdog off vs on.
watchdog-experiments:
	$(GO) run ./cmd/swifi -prime -trials 500 -seed 2026

# Shaped campaigns of the typed fault taxonomy (docs/FAULTS.md): per-kind
# outcome columns for correlated double faults, fault storms, and
# faults injected during recovery (EXPERIMENTS.md "Shaped campaigns").
fault-experiments:
	$(GO) run ./cmd/swifi -trials 500 -seed 2026 -shape correlated
	$(GO) run ./cmd/swifi -trials 500 -seed 2026 -shape storm
	$(GO) run ./cmd/swifi -trials 500 -seed 2026 -shape during-recovery

# Storage-fault columns of Table II (docs/STORAGE.md): storms of
# storage-crash/storage-corruption against the 3-replica store (quorum
# absorbs every fault inside the store) and against the single trusted
# copy (the paper's original storage model, where corruption is data
# loss the service must degrade around).
storage-experiments:
	$(GO) run ./cmd/swifi -trials 500 -seed 2026 -shape storm \
		-kinds storage-crash,storage-corruption -replicas 3
	$(GO) run ./cmd/swifi -trials 500 -seed 2026 -shape storm \
		-kinds storage-crash,storage-corruption -replicas 1

# Short fuzzing passes over the parsers.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/idl
	$(GO) test -fuzz=FuzzParseRequest -fuzztime=10s ./internal/webserver

clean:
	$(GO) clean ./...

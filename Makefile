# Convenience targets for the SuperGlue reproduction (stdlib-only Go).

GO ?= go

.PHONY: all build test race bench gen experiments watchdog-experiments fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the committed sgc-generated stubs from the IDL specifications
# (golden-tested by internal/gen.TestCommittedStubsMatchGenerator).
gen:
	$(GO) run ./cmd/sgc -builtin -loc -o internal/gen

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/swifi -trials 500 -seed 2026
	$(GO) run ./cmd/microbench
	$(GO) run ./cmd/webbench -requests 50000 -repeats 5

# Table II': paired hang-injection campaigns, kernel watchdog off vs on.
watchdog-experiments:
	$(GO) run ./cmd/swifi -prime -trials 500 -seed 2026

# Short fuzzing passes over the parsers.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/idl
	$(GO) test -fuzz=FuzzParseRequest -fuzztime=10s ./internal/webserver

clean:
	$(GO) clean ./...
